//! Fault-injection hook points for the serving stack.
//!
//! Production serving code (worker pool, monitor loop, simulation
//! supervisor) consults a [`FaultCell`] at a small number of
//! well-defined sites. When no hook is armed the consultation is a
//! single relaxed atomic load — the facility is free in production
//! builds. When a test arms a [`FaultHook`] (e.g. the deterministic
//! `FailPoint` in `octopus-testkit`), the hook decides per site whether
//! to proceed, panic, delay, fail, or deny — which is how the chaos
//! suites prove that the monitor survives worker panics, sim-thread
//! panics, delayed steps, forced `RingFull` windows, and failed
//! restructures without losing exactness or liveness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A place in the serving stack where a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A worker-pool task is about to execute. `seq` is a global,
    /// monotonically increasing evaluation number (only advanced while
    /// a hook is armed), so plans can target "the n-th task".
    WorkerTask {
        /// Armed-evaluation sequence number of this task.
        seq: u64,
    },
    /// The simulation thread is about to compute `step` (an ordinary
    /// deformation step).
    SimStep {
        /// The step about to be computed.
        step: u32,
    },
    /// The simulation thread is about to compute `step`, and the
    /// restructure schedule fires at that step — a failure injected
    /// here models a failed connectivity restructure.
    Restructure {
        /// The step about to be computed.
        step: u32,
    },
    /// The monitor is about to publish a finished step into the
    /// snapshot ring. [`FaultAction::Deny`] here forces a `RingFull`
    /// back-pressure window without needing a real pinned reader.
    RingPublish {
        /// Newest step currently published in the ring.
        latest_step: u32,
    },
}

/// What an armed hook asks the consulting site to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: run normally.
    Proceed,
    /// Panic with the given message (sites catch this with their
    /// regular panic machinery, so it models a genuine crash).
    Panic(String),
    /// Sleep for the given number of milliseconds, then run normally
    /// (models a stalled worker or a slow simulation step).
    DelayMs(u64),
    /// Fail the operation with the given message instead of running it
    /// (models e.g. a restructure that errors out). The underlying
    /// state is left untouched, so the operation may be retried.
    Fail(String),
    /// Refuse the operation (models resource exhaustion, e.g. a full
    /// snapshot ring). Sites map this to their back-pressure error.
    Deny,
}

/// Decides, per [`FaultSite`] evaluation, which [`FaultAction`] to take.
///
/// Implementations must be deterministic given the sequence of sites
/// they observe — the chaos suites rely on replaying the same plan
/// against a fault-free reference run.
pub trait FaultHook: Send + Sync {
    /// Evaluate one site consultation.
    fn evaluate(&self, site: FaultSite) -> FaultAction;
}

/// A shareable, arm-able fault hook slot.
///
/// Sites keep an `Arc<FaultCell>` and call [`FaultCell::fire`] at each
/// hook point. Disarmed (the default), `fire` is one relaxed atomic
/// load and returns [`FaultAction::Proceed`] — no locking, no
/// allocation. [`FaultCell::arm`] installs a hook for the lifetime of a
/// test; [`FaultCell::disarm`] removes it.
#[derive(Default)]
pub struct FaultCell {
    armed: AtomicBool,
    hook: RwLock<Option<Arc<dyn FaultHook>>>,
    task_seq: AtomicU64,
}

impl FaultCell {
    /// New, disarmed cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `hook`; subsequent [`FaultCell::fire`] calls consult it.
    pub fn arm(&self, hook: Arc<dyn FaultHook>) {
        *self.hook.write().unwrap_or_else(PoisonError::into_inner) = Some(hook);
        self.armed.store(true, Ordering::Release);
    }

    /// Remove the hook; [`FaultCell::fire`] returns to the free path.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        *self.hook.write().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Whether a hook is currently armed (one relaxed load).
    #[inline]
    pub fn armed(&self) -> bool {
        // relaxed: an advisory fast-path gate — a caller that sees a
        // stale value just takes the wrong branch for one call, and
        // the slow path reads the hook itself under the RwLock, which
        // synchronizes with arm/disarm.
        self.armed.load(Ordering::Relaxed)
    }

    /// Next worker-task evaluation number. Only meaningful while
    /// armed; sites call it lazily inside the armed branch so the
    /// counter does not advance in production.
    #[inline]
    pub fn next_task_seq(&self) -> u64 {
        // relaxed: a test-only sequence number; fetch_add is atomic
        // per se, and no other memory hangs off its value.
        self.task_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Consult the armed hook for `site`. Disarmed: returns
    /// [`FaultAction::Proceed`] after a single relaxed load.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> FaultAction {
        if !self.armed() {
            return FaultAction::Proceed;
        }
        self.fire_slow(site)
    }

    #[cold]
    fn fire_slow(&self, site: FaultSite) -> FaultAction {
        let guard = self.hook.read().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(hook) => hook.evaluate(site),
            None => FaultAction::Proceed,
        }
    }
}

impl std::fmt::Debug for FaultCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCell")
            .field("armed", &self.armed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysDeny;
    impl FaultHook for AlwaysDeny {
        fn evaluate(&self, _site: FaultSite) -> FaultAction {
            FaultAction::Deny
        }
    }

    #[test]
    fn disarmed_cell_proceeds() {
        let cell = FaultCell::new();
        assert!(!cell.armed());
        assert_eq!(
            cell.fire(FaultSite::SimStep { step: 1 }),
            FaultAction::Proceed
        );
    }

    #[test]
    fn arm_disarm_roundtrip() {
        let cell = FaultCell::new();
        cell.arm(Arc::new(AlwaysDeny));
        assert!(cell.armed());
        assert_eq!(
            cell.fire(FaultSite::RingPublish { latest_step: 3 }),
            FaultAction::Deny
        );
        cell.disarm();
        assert_eq!(
            cell.fire(FaultSite::RingPublish { latest_step: 3 }),
            FaultAction::Proceed
        );
    }

    #[test]
    fn task_seq_is_monotone() {
        let cell = FaultCell::new();
        assert_eq!(cell.next_task_seq(), 0);
        assert_eq!(cell.next_task_seq(), 1);
        assert_eq!(cell.next_task_seq(), 2);
    }
}
