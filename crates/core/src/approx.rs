//! Surface approximation (§IV-H2): probe a sample of the surface.
//!
//! "If a use case allows to sacrifice accuracy we can further improve
//! performance by taking a sample of … vertices on the surface rather
//! than considering the entire surface set, thereby reducing the time
//! required for the surface probe. This optimization works well because
//! groups of neighboring mesh elements move similarly throughout the
//! simulation." Visualization monitors tolerate the (usually tiny)
//! accuracy loss — Fig. 12 quantifies the trade-off.

use crate::crawler::{Crawler, VisitedStrategy};
use crate::executor::PhaseTimings;
use crate::surface_index::SurfaceIndex;
use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, VertexId};
use octopus_mesh::{Mesh, MeshError};
use std::time::Instant;

/// OCTOPUS with a sampled surface probe.
#[derive(Debug)]
pub struct ApproxOctopus {
    /// Uniform-random sample of the surface vertex ids (fixed at build,
    /// like the paper's equidistant sampling).
    sample: Vec<VertexId>,
    /// Fraction of the surface retained.
    fraction: f64,
    full_surface_len: usize,
    crawler: Crawler,
}

impl ApproxOctopus {
    /// Builds an executor probing only `fraction` ∈ (0, 1] of the surface
    /// vertices (e.g. `0.001` = 0.1 %, the paper's ≥ 90 %-accuracy
    /// setting). At least one vertex is kept when the surface is
    /// non-empty.
    pub fn new(mesh: &Mesh, fraction: f64, seed: u64) -> Result<ApproxOctopus, MeshError> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let surface = SurfaceIndex::build(mesh)?;
        Ok(ApproxOctopus::from_surface_index(
            &surface,
            mesh.num_vertices(),
            fraction,
            seed,
        ))
    }

    /// Samples from an existing surface index (avoids re-extraction when
    /// sweeping fractions, as Fig. 12 does).
    pub fn from_surface_index(
        surface: &SurfaceIndex,
        num_vertices: usize,
        fraction: f64,
        seed: u64,
    ) -> ApproxOctopus {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut ids = surface.ids().to_vec();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut ids);
        let keep = ((ids.len() as f64 * fraction).round() as usize)
            .clamp(usize::from(!ids.is_empty()), ids.len());
        ids.truncate(keep);
        ApproxOctopus {
            sample: ids,
            fraction,
            full_surface_len: surface.len(),
            crawler: Crawler::new(num_vertices, VisitedStrategy::default()),
        }
    }

    /// The configured sample fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Number of sampled probe vertices (vs. the full surface size).
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// Size of the full surface the sample was drawn from.
    pub fn full_surface_len(&self) -> usize {
        self.full_surface_len
    }

    /// Executes a range query probing only the sample. Same three phases
    /// as [`crate::Octopus::query`], but the probe is `fraction` as long
    /// — and the result may be incomplete when a disjoint sub-mesh has no
    /// sampled surface vertex inside `q`.
    pub fn query(&mut self, mesh: &Mesh, q: &Aabb, out: &mut Vec<VertexId>) -> PhaseTimings {
        let mut stats = PhaseTimings::default();
        let positions = mesh.positions();
        self.crawler.begin_query(mesh.num_vertices());

        // Two-pass probe over the sample, mirroring `Octopus::query`.
        let t0 = Instant::now();
        let mut seeds = 0usize;
        for (i, &v) in self.sample.iter().enumerate() {
            if i + octopus_geom::mem::PREFETCH_DISTANCE < self.sample.len() {
                let ahead = self.sample[i + octopus_geom::mem::PREFETCH_DISTANCE] as usize;
                octopus_geom::mem::prefetch_read(positions, ahead);
            }
            if q.contains(positions[v as usize]) && self.crawler.seed(v, out) {
                seeds += 1;
            }
        }
        stats.start_vertices = seeds;
        stats.surface_probe = t0.elapsed();

        if seeds == 0 {
            let t1 = Instant::now();
            let mut min_vertex: Option<VertexId> = None;
            let mut min_dist = f32::INFINITY;
            for &v in &self.sample {
                let d = q.dist_sq(positions[v as usize]);
                if d < min_dist {
                    min_dist = d;
                    min_vertex = Some(v);
                }
            }
            if let Some(sv) = min_vertex {
                if let Some(inside) = self.crawler.directed_walk(mesh, q, sv) {
                    self.crawler.seed(inside, out);
                    stats.start_vertices = 1;
                }
            }
            stats.walk_visited = self.crawler.walk_visited;
            stats.directed_walk = t1.elapsed();
        }

        let t2 = Instant::now();
        self.crawler.crawl(mesh, q, out);
        stats.crawling = t2.elapsed();
        stats.crawl_visited = self.crawler.crawl_visited;
        stats.results = out.len();
        stats
    }

    /// Heap bytes of sample + scratch.
    pub fn memory_bytes(&self) -> usize {
        self.sample.capacity() * std::mem::size_of::<VertexId>() + self.crawler.memory_bytes()
    }
}

/// Result accuracy of an approximate result vs. the exact one:
/// `|approx ∩ exact| / |exact|` ∈ [0, 1] (1.0 for an empty exact result).
/// This is Fig. 12(a)'s y-axis.
pub fn result_accuracy(approx: &[VertexId], exact: &[VertexId]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let exact_set: std::collections::HashSet<VertexId> = exact.iter().copied().collect();
    let hits = approx.iter().filter(|v| exact_set.contains(v)).count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;
    use octopus_meshgen::voxel::VoxelRegion;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn full_fraction_equals_exact_octopus() {
        let mesh = box_mesh(6);
        let mut approx = ApproxOctopus::new(&mesh, 1.0, 1).unwrap();
        let mut exact = crate::Octopus::new(&mesh).unwrap();
        let q = Aabb::new(Point3::splat(0.1), Point3::splat(0.7));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        approx.query(&mesh, &q, &mut a);
        exact.query(&mesh, &q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(approx.sample_len(), approx.full_surface_len());
    }

    #[test]
    fn results_are_always_a_subset_of_exact() {
        let mesh = box_mesh(6);
        let mut exact = crate::Octopus::new(&mesh).unwrap();
        for fraction in [0.01, 0.1, 0.5] {
            let mut approx = ApproxOctopus::new(&mesh, fraction, 7).unwrap();
            let q = Aabb::new(Point3::splat(0.2), Point3::splat(0.9));
            let (mut a, mut e) = (Vec::new(), Vec::new());
            approx.query(&mesh, &q, &mut a);
            exact.query(&mesh, &q, &mut e);
            let eset: std::collections::HashSet<u32> = e.iter().copied().collect();
            assert!(
                a.iter().all(|v| eset.contains(v)),
                "fraction {fraction}: subset property"
            );
            let acc = result_accuracy(&a, &e);
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn sample_size_scales_with_fraction_but_never_zero() {
        let mesh = box_mesh(6);
        let half = ApproxOctopus::new(&mesh, 0.5, 3).unwrap();
        assert!((half.sample_len() as f64 / half.full_surface_len() as f64 - 0.5).abs() < 0.05);
        let tiny = ApproxOctopus::new(&mesh, 1e-9, 3).unwrap();
        assert_eq!(
            tiny.sample_len(),
            1,
            "non-empty surface keeps at least one probe vertex"
        );
    }

    #[test]
    fn connected_mesh_with_any_seed_recovers_full_result() {
        // On a connected convex mesh one good seed suffices — accuracy is
        // 100 % as long as a sampled surface vertex lands in the query.
        let mesh = box_mesh(8);
        let mut approx = ApproxOctopus::new(&mesh, 0.2, 5).unwrap();
        let mut exact = crate::Octopus::new(&mesh).unwrap();
        // A large query certainly contains sampled corner-region vertices.
        let q = Aabb::new(Point3::ORIGIN, Point3::splat(0.99));
        let (mut a, mut e) = (Vec::new(), Vec::new());
        approx.query(&mesh, &q, &mut a);
        exact.query(&mesh, &q, &mut e);
        assert_eq!(result_accuracy(&a, &e), 1.0);
    }

    #[test]
    fn accuracy_metric_edge_cases() {
        assert_eq!(result_accuracy(&[], &[]), 1.0);
        assert_eq!(result_accuracy(&[1, 2], &[]), 1.0);
        assert_eq!(result_accuracy(&[], &[1, 2]), 0.0);
        assert_eq!(result_accuracy(&[1], &[1, 2]), 0.5);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn zero_fraction_rejected() {
        let mesh = box_mesh(2);
        let _ = ApproxOctopus::new(&mesh, 0.0, 1);
    }

    #[test]
    fn deterministic_sampling() {
        let mesh = box_mesh(5);
        let a = ApproxOctopus::new(&mesh, 0.3, 42).unwrap();
        let b = ApproxOctopus::new(&mesh, 0.3, 42).unwrap();
        assert_eq!(a.sample, b.sample);
    }
}
