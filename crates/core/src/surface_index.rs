//! The mesh surface index (§IV-E).
//!
//! "The surface index is implemented using a hash table where the vertex
//! identifier serves as the hash-key and the hash-value represents a
//! pointer to the surface vertex in memory. During the surface probe, all
//! surface vertices are accessed via the pointers in the hash table in no
//! particular order."
//!
//! The index is built **once** before the simulation; deformation never
//! touches it, and restructuring applies O(delta) hash inserts/deletes
//! ([`SurfaceIndex::apply_delta`]). For cache-friendly probing the ids
//! are additionally kept in a dense vector (the hash map stores each id's
//! slot so deletion stays O(1) via swap-remove); the
//! `ablation_surface_layout` bench quantifies the difference against
//! iterating the hash map directly.

use octopus_geom::VertexId;
use octopus_mesh::{Mesh, MeshError, Surface, SurfaceDelta};
use std::collections::HashMap;

/// Hash-based index over the mesh's surface vertices.
///
/// ```
/// use octopus_core::SurfaceIndex;
/// use octopus_geom::{Aabb, Point3};
/// use octopus_meshgen::{tet::tetrahedralize, VoxelRegion};
///
/// let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
/// let mesh = tetrahedralize(&VoxelRegion::solid_box(&bounds, 4, 4, 4))?;
/// let index = SurfaceIndex::build(&mesh)?;
/// // A 4³ lattice has 5³ vertices of which 3³ are interior.
/// assert_eq!(index.len(), 125 - 27);
/// # Ok::<(), octopus_mesh::MeshError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SurfaceIndex {
    /// id → slot in `dense` (the paper's hash table).
    slots: HashMap<VertexId, u32>,
    /// Dense id list for sequential probing.
    dense: Vec<VertexId>,
}

impl SurfaceIndex {
    /// Builds the index by extracting the mesh surface via the global
    /// face list (§IV-E1). One-time cost, reported separately from query
    /// time in the paper (62 s for the 33 GB dataset).
    pub fn build(mesh: &Mesh) -> Result<SurfaceIndex, MeshError> {
        Ok(SurfaceIndex::from_surface(&mesh.surface()?))
    }

    /// Builds the index from an already extracted [`Surface`].
    pub fn from_surface(surface: &Surface) -> SurfaceIndex {
        let dense: Vec<VertexId> = surface.vertices().to_vec();
        let slots = dense
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        SurfaceIndex { slots, dense }
    }

    /// Number of surface vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// True when the mesh has no surface vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// True when `v` is a surface vertex.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.slots.contains_key(&v)
    }

    /// The surface vertex ids, in no particular order (the probe order).
    #[inline]
    pub fn ids(&self) -> &[VertexId] {
        &self.dense
    }

    /// Inserts a vertex (restructuring made it a surface vertex).
    /// Idempotent.
    pub fn insert(&mut self, v: VertexId) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.slots.entry(v) {
            e.insert(self.dense.len() as u32);
            self.dense.push(v);
        }
    }

    /// Removes a vertex (restructuring took it off the surface). O(1)
    /// via swap-remove. Idempotent.
    pub fn remove(&mut self, v: VertexId) {
        if let Some(slot) = self.slots.remove(&v) {
            let last = self.dense.len() as u32 - 1;
            self.dense.swap_remove(slot as usize);
            if slot != last {
                let moved = self.dense[slot as usize];
                self.slots.insert(moved, slot);
            }
        }
    }

    /// Applies a restructuring delta: "the surface index is updated with
    /// insert or delete operations on the hash table" (§IV-E2).
    pub fn apply_delta(&mut self, delta: &SurfaceDelta) {
        for &v in &delta.removed {
            self.remove(v);
        }
        for &v in &delta.added {
            self.insert(v);
        }
    }

    /// Heap bytes: hash table + dense vector (the "27 MB surface index"
    /// component of the paper's Fig. 10(b) accounting).
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * (std::mem::size_of::<(VertexId, u32)>() + 1)
            + self.dense.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::{Aabb, Point3};
    use octopus_meshgen::voxel::VoxelRegion;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn build_matches_surface_extraction() {
        let mesh = box_mesh(3);
        let idx = SurfaceIndex::build(&mesh).unwrap();
        let surface = mesh.surface().unwrap();
        assert_eq!(idx.len(), surface.len());
        for &v in surface.vertices() {
            assert!(idx.contains(v));
        }
        let mut ids = idx.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, surface.vertices());
    }

    #[test]
    fn insert_and_remove_are_idempotent_and_consistent() {
        let mut idx = SurfaceIndex::default();
        idx.insert(5);
        idx.insert(9);
        idx.insert(5);
        assert_eq!(idx.len(), 2);
        idx.remove(5);
        idx.remove(5);
        assert_eq!(idx.len(), 1);
        assert!(!idx.contains(5));
        assert!(idx.contains(9));
        // Internal consistency: slot of every dense id maps back.
        for (i, &v) in idx.ids().iter().enumerate() {
            assert_eq!(idx.slots[&v], i as u32);
        }
    }

    #[test]
    fn swap_remove_fixes_moved_slot() {
        let mut idx = SurfaceIndex::default();
        for v in [10, 20, 30, 40] {
            idx.insert(v);
        }
        idx.remove(10); // 40 moves into slot 0
        assert!(idx.contains(40));
        idx.remove(40);
        assert_eq!(idx.len(), 2);
        let mut ids = idx.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![20, 30]);
    }

    #[test]
    fn apply_delta_after_real_restructuring_matches_fresh_build() {
        let mut mesh = box_mesh(3);
        mesh.enable_restructuring().unwrap();
        let mut idx = SurfaceIndex::build(&mesh).unwrap();
        // Remove several cells; apply deltas incrementally.
        for c in [0u32, 7, 13, 22, 40] {
            let delta = mesh.remove_cell(c).unwrap();
            idx.apply_delta(&delta);
        }
        let fresh = SurfaceIndex::build(&mesh).unwrap();
        assert_eq!(idx.len(), fresh.len());
        let mut a = idx.ids().to_vec();
        let mut b = fresh.ids().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "incremental maintenance must equal a rebuild");
    }

    #[test]
    fn deformation_requires_no_maintenance() {
        // The index is position-free: moving vertices cannot invalidate
        // it. (Type-level property — there is no position anywhere in the
        // struct — but assert behaviour too.)
        let mut mesh = box_mesh(2);
        let idx = SurfaceIndex::build(&mesh).unwrap();
        let before = idx.ids().to_vec();
        for p in mesh.positions_mut() {
            *p = Point3::new(p.x * 3.0 - 1.0, p.y + 10.0, -p.z);
        }
        let rebuilt = SurfaceIndex::build(&mesh).unwrap();
        let mut a = before;
        let mut b = rebuilt.ids().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_accounting() {
        let mesh = box_mesh(4);
        let idx = SurfaceIndex::build(&mesh).unwrap();
        assert!(idx.memory_bytes() >= idx.len() * 4);
    }
}
