//! OCTOPUS-CON: the convex-mesh variant (§IV-F).
//!
//! Convex meshes satisfy complete internal reachability, so the surface
//! probe is unnecessary: *any* start vertex reaches the query region by a
//! directed walk, and one crawl retrieves the exact result. To keep the
//! walk short, OCTOPUS-CON consults a **stale** uniform grid — built once
//! before the simulation and never updated — for a vertex that was near
//! the query centre at build time. Staleness is harmless: the grid only
//! chooses a starting point; correctness comes from the walk + crawl on
//! live data.

use crate::crawler::{Crawler, VisitedStrategy};
use crate::executor::PhaseTimings;
use octopus_geom::{Aabb, VertexId};
use octopus_index::{DynamicIndex, UniformGrid};
use octopus_mesh::Mesh;
use std::time::Instant;

/// Default grid resolution: 10 × 10 × 10 = the 1000-cell grid the paper
/// uses for its Fig. 9(a/b) measurements.
pub const DEFAULT_GRID_RESOLUTION: usize = 10;

/// The convex-mesh query executor.
#[derive(Debug)]
pub struct OctopusCon {
    grid: UniformGrid,
    crawler: Crawler,
}

impl OctopusCon {
    /// Builds the stale grid (resolution `10³` cells) over the mesh's
    /// current bounds.
    pub fn new(mesh: &Mesh) -> OctopusCon {
        OctopusCon::with_resolution(mesh, DEFAULT_GRID_RESOLUTION)
    }

    /// Builds with an explicit per-axis grid resolution (Fig. 9(c/d)
    /// sweeps 2–18, i.e. 8–5832 cells).
    pub fn with_resolution(mesh: &Mesh, res: usize) -> OctopusCon {
        let bounds = mesh.bounding_box();
        OctopusCon {
            grid: UniformGrid::build(mesh.positions(), &bounds, res),
            crawler: Crawler::new(mesh.num_vertices(), VisitedStrategy::default()),
        }
    }

    /// The stale grid (inspection / Fig. 9(d) memory readings).
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Executes a range query on a convex mesh. Phases: stale-grid lookup
    /// (+ directed walk) → crawl. The surface-probe timing slot stays
    /// zero, which is exactly the saving Fig. 9(b) shows.
    ///
    /// # Accuracy
    /// Exact for meshes with complete internal reachability (convex
    /// geometry). On non-convex meshes use [`crate::Octopus`].
    pub fn query(&mut self, mesh: &Mesh, q: &Aabb, out: &mut Vec<VertexId>) -> PhaseTimings {
        let mut stats = PhaseTimings::default();
        self.crawler.begin_query(mesh.num_vertices());

        let t0 = Instant::now();
        if let Some(start) = self.grid.stale_start_vertex(q.center()) {
            if let Some(inside) = self.crawler.directed_walk(mesh, q, start) {
                self.crawler.seed(inside, out);
                stats.start_vertices = 1;
            }
        }
        stats.walk_visited = self.crawler.walk_visited;
        stats.directed_walk = t0.elapsed();

        let t1 = Instant::now();
        self.crawler.crawl(mesh, q, out);
        stats.crawling = t1.elapsed();
        stats.crawl_visited = self.crawler.crawl_visited;
        stats.results = out.len();
        stats
    }

    /// Heap bytes: grid + traversal scratch.
    pub fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes() + self.crawler.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::rng::SplitMix64;
    use octopus_geom::Point3;
    use octopus_meshgen::voxel::VoxelRegion;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    fn scan(mesh: &Mesh, q: &Aabb) -> Vec<VertexId> {
        mesh.positions()
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(**p))
            .map(|(i, _)| i as VertexId)
            .collect()
    }

    #[test]
    fn exact_on_convex_mesh_random_queries() {
        let mesh = box_mesh(8);
        let mut con = OctopusCon::new(&mesh);
        let mut rng = SplitMix64::new(21);
        for i in 0..30 {
            let c = Point3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            let q = Aabb::cube(c, rng.range_f32(0.03, 0.3));
            let mut out = Vec::new();
            con.query(&mesh, &q, &mut out);
            out.sort_unstable();
            assert_eq!(out, scan(&mesh, &q), "query {i}");
        }
    }

    #[test]
    fn interior_queries_never_touch_a_surface_probe() {
        let mesh = box_mesh(8);
        let mut con = OctopusCon::new(&mesh);
        let q = Aabb::new(Point3::splat(0.45), Point3::splat(0.55));
        let mut out = Vec::new();
        let stats = con.query(&mesh, &q, &mut out);
        assert_eq!(stats.surface_probe, std::time::Duration::ZERO);
        assert!(stats.walk_visited >= 1);
        out.sort_unstable();
        assert_eq!(out, scan(&mesh, &q));
    }

    #[test]
    fn stays_exact_when_grid_goes_stale_affine_motion() {
        let mut mesh = box_mesh(8);
        let mut con = OctopusCon::new(&mesh);
        // Convexity-preserving motion: shear the whole box each step —
        // the stale grid now disagrees with live positions.
        for step in 1..=5 {
            let s = step as f32 * 0.05;
            for p in mesh.positions_mut() {
                let y = p.y;
                p.x += s * y; // shear
                p.z *= 1.0 + 0.02 * s;
            }
            let q = Aabb::cube(Point3::new(0.5 + s, 0.5, 0.5), 0.15);
            let mut out = Vec::new();
            con.query(&mesh, &q, &mut out);
            out.sort_unstable();
            assert_eq!(out, scan(&mesh, &q), "step {step}");
        }
    }

    #[test]
    fn empty_query_outside_mesh() {
        let mesh = box_mesh(5);
        let mut con = OctopusCon::new(&mesh);
        let q = Aabb::cube(Point3::splat(9.0), 0.5);
        let mut out = Vec::new();
        let stats = con.query(&mesh, &q, &mut out);
        assert!(out.is_empty());
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn finer_grid_shortens_the_walk() {
        let mesh = box_mesh(12);
        let mut coarse = OctopusCon::with_resolution(&mesh, 2);
        let mut fine = OctopusCon::with_resolution(&mesh, 12);
        let mut rng = SplitMix64::new(31);
        let (mut walk_coarse, mut walk_fine) = (0usize, 0usize);
        for _ in 0..20 {
            let c = Point3::new(
                rng.range_f32(0.1, 0.9),
                rng.range_f32(0.1, 0.9),
                rng.range_f32(0.1, 0.9),
            );
            let q = Aabb::cube(c, 0.05);
            let mut out = Vec::new();
            walk_coarse += coarse.query(&mesh, &q, &mut out).walk_visited;
            out.clear();
            walk_fine += fine.query(&mesh, &q, &mut out).walk_visited;
        }
        assert!(
            walk_fine < walk_coarse,
            "Fig. 9(c) trend: fine {walk_fine} < coarse {walk_coarse}"
        );
        // Fig. 9(d) trend: finer grid costs more memory.
        assert!(fine.grid().memory_bytes() > coarse.grid().memory_bytes());
    }

    #[test]
    fn results_match_octopus_full_on_convex_mesh() {
        let mesh = box_mesh(6);
        let mut con = OctopusCon::new(&mesh);
        let mut full = crate::Octopus::new(&mesh).unwrap();
        let q = Aabb::new(Point3::splat(0.2), Point3::splat(0.8));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        con.query(&mesh, &q, &mut a);
        full.query(&mesh, &q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_memory_is_reported() {
        let mesh = box_mesh(4);
        let con = OctopusCon::with_resolution(&mesh, 6);
        assert!(con.memory_bytes() > 0);
        assert_eq!(con.grid().num_cells(), 216);
    }
}
