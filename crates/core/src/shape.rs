//! Query shapes beyond the plain box — the scenario-diversity layer.
//!
//! The paper evaluates rectangular range queries only; real monitoring
//! scenarios also ask for the k vertices nearest an electrode
//! ([`QueryShape::KNearest`]), for vertices inside a clipped polytope
//! such as the earthquake example ([`QueryShape::Convex`]), and for
//! summaries where the caller never needs the ids at all
//! ([`QueryShape::Aggregate`]). All of them execute on the same
//! probe → walk → crawl machinery; this module is the common vocabulary
//! threaded through [`crate::Octopus::query_shape`],
//! [`crate::Planner::decide_shape`] and the service layer's batch
//! engine.

use octopus_geom::{Aabb, ConvexRegion, Point3, VertexId};

/// A query shape the executor can answer.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryShape {
    /// The paper's rectangular range query.
    Box(Aabb),
    /// A bounded convex region (box ∩ half-spaces).
    Convex(ConvexRegion),
    /// The `k` active vertices nearest `point` (Euclidean distance,
    /// ties broken by ascending vertex id).
    KNearest {
        /// Number of neighbours requested.
        k: usize,
        /// Query point.
        point: Point3,
    },
    /// A summary over the vertices inside `region`, computed without
    /// materialising the result set.
    Aggregate {
        /// The range to aggregate over.
        region: Aabb,
        /// Which summary to compute.
        kind: AggregateKind,
    },
}

impl QueryShape {
    /// A box bounding the shape's result locus: the region itself for
    /// boxes/convex/aggregate shapes, a degenerate point box for
    /// k-nearest (whose true extent is data dependent). Used by the
    /// batch engine's Hilbert sweep and the planner's histogram probe.
    pub fn bounds(&self) -> Aabb {
        match self {
            QueryShape::Box(q) => *q,
            QueryShape::Convex(r) => r.bounds,
            QueryShape::KNearest { point, .. } => Aabb::new(*point, *point),
            QueryShape::Aggregate { region, .. } => *region,
        }
    }

    /// True for the plain box shape — the only shape eligible for the
    /// batch engine's shared-frontier overlap groups and seed cache.
    pub fn is_box(&self) -> bool {
        matches!(self, QueryShape::Box(_))
    }
}

/// Which summary an aggregate query computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// Number of vertices inside the region.
    Count,
    /// Count plus the mean position of the vertices inside the region.
    Centroid,
}

/// The answer to an aggregate query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AggregateValue {
    /// Number of vertices inside the region.
    pub count: usize,
    /// Mean position of those vertices; `None` for
    /// [`AggregateKind::Count`] or an empty result.
    pub centroid: Option<Point3>,
}

/// The answer to a [`QueryShape`] — heterogeneous because aggregate
/// shapes skip result materialisation entirely.
#[derive(Clone, Debug, PartialEq)]
pub enum ShapeResult {
    /// Matching vertex ids. Box/convex shapes: crawl discovery order
    /// (sort for set comparison); k-nearest: ascending by
    /// (distance, id).
    Vertices(Vec<VertexId>),
    /// The summary of an aggregate shape (no ids were materialised).
    Aggregate(AggregateValue),
}

impl ShapeResult {
    /// The materialised ids, or `None` for aggregates.
    pub fn vertices(&self) -> Option<&[VertexId]> {
        match self {
            ShapeResult::Vertices(v) => Some(v),
            ShapeResult::Aggregate(_) => None,
        }
    }

    /// The result cardinality (aggregates report their count).
    pub fn len(&self) -> usize {
        match self {
            ShapeResult::Vertices(v) => v.len(),
            ShapeResult::Aggregate(a) => a.count,
        }
    }

    /// True when no vertex matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
