//! Shared traversal machinery: the crawl (BFS) and the directed walk.
//!
//! Both [`crate::Octopus`] and [`crate::OctopusCon`] execute queries by
//! walking mesh edges; this module owns the scratch state (visited set,
//! BFS queue) so repeated queries reuse allocations — the "data
//! structures used during crawling" whose footprint Fig. 10(b) reports.

use octopus_geom::{Region, VertexId};
use octopus_mesh::{Mesh, BLOCK_LANES};
use std::collections::HashSet;

#[cfg(test)]
use octopus_geom::Aabb;

/// Epoch-stamped dense membership set: a `Vec<u32>` of stamps plus a
/// current-generation counter. Starting a new generation is O(1) — bump
/// the counter — except on the (once per `u32::MAX` generations) wrap,
/// where the whole array is cleared so stamps from the previous counter
/// cycle can never alias a future generation. All epoch-stamped scratch
/// in the workspace (the crawler's visited set, the executor's
/// per-component seeding scratch, the per-worker shard scratch of
/// `octopus-service`) shares this one audited implementation.
#[derive(Clone, Debug)]
pub(crate) struct EpochStamps {
    epoch: u32,
    stamps: Vec<u32>,
}

impl Default for EpochStamps {
    fn default() -> EpochStamps {
        EpochStamps::with_len(0)
    }
}

impl EpochStamps {
    pub(crate) fn with_len(n: usize) -> EpochStamps {
        // The generation counter starts at 1 so a pristine set (all
        // stamps 0) reads as *unmarked* even before the first `begin` —
        // probing a never-used scratch answers truthfully instead of
        // "everything visited".
        EpochStamps {
            epoch: 1,
            stamps: vec![0; n],
        }
    }

    /// Starts a new generation over `n` slots. Slots added by a resize
    /// are filled with the *previous* generation's stamp, i.e. they
    /// start unmarked; on counter wrap every slot is cleared (the fix
    /// for stale-stamp aliasing across `u32` cycles).
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamps.len() != n {
            self.stamps.resize(n, self.epoch);
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks slot `i`; returns `true` when it was not yet marked in the
    /// current generation.
    #[inline]
    pub(crate) fn mark(&mut self, i: usize) -> bool {
        let slot = &mut self.stamps[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True when slot `i` is marked in the current generation.
    #[inline]
    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    pub(crate) fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * std::mem::size_of::<u32>()
    }

    /// Test hook: jump the generation counter (e.g. next to the wrap
    /// point) without touching the stamps, simulating the billions of
    /// intermediate queries that would get it there naturally.
    #[cfg(test)]
    pub(crate) fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Read-only view of a query's visited set, shareable across worker
/// threads while they expand frontier chunks in parallel (the master
/// set is only mutated between rounds, on the merging thread).
#[derive(Clone, Copy, Debug)]
pub struct VisitedView<'a>(VisitedViewInner<'a>);

#[derive(Clone, Copy, Debug)]
enum VisitedViewInner<'a> {
    Stamps { stamps: &'a [u32], epoch: u32 },
    Set(&'a HashSet<VertexId>),
}

impl VisitedView<'_> {
    /// True when `v` is already part of the current query's visited set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match self.0 {
            VisitedViewInner::Stamps { stamps, epoch } => stamps[v as usize] == epoch,
            VisitedViewInner::Set(set) => set.contains(&v),
        }
    }
}

/// How the crawl remembers visited vertices.
///
/// The paper's C++ implementation keeps memory proportional to the query
/// result (Fig. 10b), which corresponds to a hash set. An epoch-stamped
/// dense array trades O(V) memory for faster lookups; `DESIGN.md` lists
/// this as an ablation (`ablation_visited` bench).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VisitedStrategy {
    /// Dense `Vec<u32>` of epoch stamps — O(V) memory, O(1) reset, fastest.
    #[default]
    EpochArray,
    /// `HashSet<VertexId>` — memory proportional to vertices touched by
    /// the query (the paper's reported footprint behaviour).
    HashSet,
}

/// Order in which the crawl expands the frontier.
///
/// The paper chose breadth-first; depth-first visits the same vertex set
/// (the stop criterion only depends on membership), differing only in
/// memory-access pattern. The `ablation_crawl_order` bench compares them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrawlOrder {
    /// Breadth-first (paper's choice, §IV-B).
    #[default]
    Bfs,
    /// Depth-first (ablation).
    Dfs,
}

/// Reusable traversal scratch state.
#[derive(Debug)]
pub(crate) struct Crawler {
    strategy: VisitedStrategy,
    pub(crate) order: CrawlOrder,
    visited: EpochStamps,
    set: HashSet<VertexId>,
    queue: Vec<VertexId>,
    /// Vertices examined by the last crawl (inside + frontier outside).
    pub crawl_visited: usize,
    /// Vertices stepped through by the last directed walk.
    pub walk_visited: usize,
    /// Squared distance to the query at the last walk's termination
    /// (0 on success, ∞ before any walk). Gates walk-retry heuristics.
    pub last_walk_end_dist_sq: f32,
}

impl Crawler {
    pub(crate) fn new(num_vertices: usize, strategy: VisitedStrategy) -> Crawler {
        let visited = match strategy {
            VisitedStrategy::EpochArray => EpochStamps::with_len(num_vertices),
            VisitedStrategy::HashSet => EpochStamps::default(),
        };
        Crawler {
            strategy,
            order: CrawlOrder::Bfs,
            visited,
            set: HashSet::new(),
            queue: Vec::new(),
            crawl_visited: 0,
            walk_visited: 0,
            last_walk_end_dist_sq: f32::INFINITY,
        }
    }

    /// Prepares for a new query: O(1) for the epoch array (O(V) on the
    /// rare epoch wrap, see [`EpochStamps::begin`]), O(touched) for the
    /// hash set.
    pub(crate) fn begin_query(&mut self, num_vertices: usize) {
        match self.strategy {
            // Restructuring may have added vertices; `begin` resizes.
            VisitedStrategy::EpochArray => self.visited.begin(num_vertices),
            VisitedStrategy::HashSet => self.set.clear(),
        }
        self.queue.clear();
        self.crawl_visited = 0;
        self.walk_visited = 0;
    }

    #[inline]
    pub(crate) fn mark(&mut self, v: VertexId) -> bool {
        match self.strategy {
            VisitedStrategy::EpochArray => self.visited.mark(v as usize),
            VisitedStrategy::HashSet => self.set.insert(v),
        }
    }

    /// Read-only view of the visited set, shareable across threads while
    /// no `mark`/`seed`/`crawl` call is in flight.
    pub(crate) fn visited_view(&self) -> VisitedView<'_> {
        match self.strategy {
            VisitedStrategy::EpochArray => VisitedView(VisitedViewInner::Stamps {
                stamps: &self.visited.stamps,
                epoch: self.visited.epoch,
            }),
            VisitedStrategy::HashSet => VisitedView(VisitedViewInner::Set(&self.set)),
        }
    }

    /// Test hook for the epoch-wrap regression tests.
    #[cfg(test)]
    pub(crate) fn force_epoch(&mut self, epoch: u32) {
        self.visited.force_epoch(epoch);
    }

    /// Seeds the BFS with a start vertex known to lie inside the query.
    /// Returns `true` when the vertex was fresh (not yet part of this
    /// query's result) — in that case it is also appended to `out`.
    #[inline]
    pub(crate) fn seed(&mut self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        if self.mark(v) {
            out.push(v);
            self.queue.push(v);
            true
        } else {
            false
        }
    }

    /// The crawling phase (§IV-B): breadth-first traversal along mesh
    /// edges from all seeded vertices. An edge is never followed past a
    /// vertex outside the query region, so the work done is proportional
    /// to the result size times the mesh degree — not the dataset size.
    ///
    /// Generic over [`Region`] (monomorphised — the box fast path is
    /// unchanged), so the same BFS serves boxes, convex regions, and any
    /// future shape with a containment predicate.
    pub(crate) fn crawl<R: Region>(&mut self, mesh: &Mesh, q: &R, out: &mut Vec<VertexId>) {
        self.crawl_with(mesh, q, |w| out.push(w));
    }

    /// [`Crawler::crawl`] without result materialisation: `visit` fires
    /// once per newly discovered in-region vertex (seeds, already
    /// marked, are the caller's to fold). This is the aggregate-query
    /// path — counting or summing positions needs no result vector.
    pub(crate) fn crawl_with<R: Region>(
        &mut self,
        mesh: &Mesh,
        q: &R,
        mut visit: impl FnMut(VertexId),
    ) {
        // The crawl reads positions through the blocked SoA mirror
        // (rebuilt lazily here if deformation outdated it): one block =
        // three cache lines shared by 16 consecutive ids, which the
        // cache-oblivious layout packs neighbourhoods into.
        let blocks = mesh.position_blocks();
        let blk = blocks.blocks();
        // The queue is a grow-only Vec: BFS pops advance `head`, DFS
        // pops the tail. Keeping popped ids in place costs nothing (the
        // buffer is result-sized either way) and buys the branchless
        // append below.
        let mut head = 0usize;
        match self.strategy {
            // The hot path is *branchless* on freshness and containment.
            // Whether a neighbour was already visited is decided by the
            // crawl wavefront, which under a locality-optimised layout
            // is uncorrelated with the id order of the adjacency list —
            // a `if !visited` branch there is a coin flip that costs a
            // pipeline flush per miss and made every well-packed layout
            // measure *slower* than the generator order. Instead: the
            // stamp store is unconditional (re-marking is idempotent),
            // freshness and containment fold to 0/1 integers, and the
            // conditional queue append becomes an always-write with a
            // 0/1 tail bump.
            VisitedStrategy::EpochArray => {
                let epoch = self.visited.epoch;
                let stamps = &mut self.visited.stamps[..];
                let queue = &mut self.queue;
                let mut popped = 0usize;
                let mut rejected = 0usize;
                loop {
                    let v = match self.order {
                        CrawlOrder::Bfs => {
                            if head == queue.len() {
                                break;
                            }
                            head += 1;
                            queue[head - 1]
                        }
                        CrawlOrder::Dfs => match queue.pop() {
                            Some(v) => v,
                            None => break,
                        },
                    };
                    popped += 1;
                    let neighbors = mesh.neighbors(v);
                    let start = queue.len();
                    // Room for the worst case up front, so the inner
                    // loop writes unconditionally and the final length
                    // is just `truncate`d back.
                    queue.resize(start + neighbors.len(), 0);
                    let mut tail = start;
                    for &w in neighbors {
                        let wi = w as usize;
                        let slot = &mut stamps[wi];
                        let fresh = (*slot != epoch) as usize;
                        *slot = epoch;
                        let block = &blk[wi / BLOCK_LANES];
                        let l = wi % BLOCK_LANES;
                        let inside =
                            q.contains_coords(block.xs()[l], block.ys()[l], block.zs()[l]) as usize;
                        let take = fresh & inside;
                        queue[tail] = w;
                        tail += take;
                        rejected += fresh - take;
                    }
                    queue.truncate(tail);
                    for &w in &queue[start..tail] {
                        visit(w);
                    }
                }
                self.crawl_visited += popped + rejected;
            }
            // The hash-set ablation keeps the straightforward loop: its
            // per-probe cost dwarfs a mispredict, and `insert` cannot be
            // made unconditional.
            VisitedStrategy::HashSet => loop {
                let v = match self.order {
                    CrawlOrder::Bfs => {
                        if head == self.queue.len() {
                            break;
                        }
                        head += 1;
                        self.queue[head - 1]
                    }
                    CrawlOrder::Dfs => match self.queue.pop() {
                        Some(v) => v,
                        None => break,
                    },
                };
                self.crawl_visited += 1;
                for &w in mesh.neighbors(v) {
                    if self.set.insert(w) {
                        let wi = w as usize;
                        let block = &blk[wi / BLOCK_LANES];
                        let l = wi % BLOCK_LANES;
                        if q.contains_coords(block.xs()[l], block.ys()[l], block.zs()[l]) {
                            visit(w);
                            self.queue.push(w);
                        } else {
                            self.crawl_visited += 1;
                        }
                    }
                }
            },
        }
    }

    /// The directed walk (§IV-D): from `start`, repeatedly move to the
    /// neighbour strictly closest to the query region until a vertex
    /// inside the region is found. Returns that vertex, or `None` when no
    /// neighbour improves the distance (then the query region does not
    /// intersect this part of the mesh).
    ///
    /// Termination: the distance to `q` strictly decreases every step, so
    /// the walk can never revisit a vertex.
    pub(crate) fn directed_walk<R: Region>(
        &mut self,
        mesh: &Mesh,
        q: &R,
        start: VertexId,
    ) -> Option<VertexId> {
        let (found, steps, end_dist_sq) = greedy_walk(mesh, q, start);
        self.walk_visited += steps;
        self.last_walk_end_dist_sq = end_dist_sq;
        found
    }

    /// Heap bytes of the scratch structures. The blocked SoA position
    /// store the crawl reads through is *dataset* memory, owned and
    /// accounted (padding included) by [`Mesh::memory_bytes`] — the v2
    /// hot path added no crawl-owned state beyond the queue it always
    /// had.
    pub(crate) fn memory_bytes(&self) -> usize {
        let visited = match self.strategy {
            VisitedStrategy::EpochArray => self.visited.heap_bytes(),
            VisitedStrategy::HashSet => hash_set_heap_bytes(&self.set),
        };
        visited + self.queue.capacity() * std::mem::size_of::<VertexId>()
    }

    /// The configured visited-set strategy.
    pub(crate) fn strategy(&self) -> VisitedStrategy {
        self.strategy
    }
}

/// One greedy directed walk (§IV-D): from `start`, repeatedly move to
/// the neighbour strictly closest to `q` until a vertex inside `q` is
/// found or no neighbour improves the distance. Returns `(found vertex,
/// vertices stepped through, squared distance at termination)` — the
/// distance is `0.0` on success and gates the caller's retry heuristics
/// on failure.
///
/// Termination: the distance to `q` strictly decreases every step, so
/// the walk can never revisit a vertex. Shared by the single-query
/// [`Crawler`] and the multi-query group seeder, which runs one walk per
/// (query, unseeded component) pair without owning a `Crawler`.
///
/// Generic over [`Region`]: the walk only compares distances, so any
/// guidance metric that is zero exactly on containment preserves both
/// termination and the found-vertex contract (see
/// [`octopus_geom::ConvexRegion`]'s lower-bound distance).
pub(crate) fn greedy_walk<R: Region>(
    mesh: &Mesh,
    q: &R,
    start: VertexId,
) -> (Option<VertexId>, usize, f32) {
    let positions = mesh.positions();
    let mut steps = 0usize;
    let mut cur = start;
    let mut cur_dist = q.dist_sq(positions[cur as usize]);
    loop {
        steps += 1;
        if cur_dist == 0.0 {
            return (Some(cur), steps, 0.0);
        }
        let mut best = cur;
        let mut best_dist = cur_dist;
        for &w in mesh.neighbors(cur) {
            let d = q.dist_sq(positions[w as usize]);
            if d < best_dist {
                best = w;
                best_dist = d;
            }
        }
        if best == cur {
            // Local minimum: no neighbour is closer (Algorithm 1's
            // `minDistance = oldMinDistance` break).
            return (None, steps, cur_dist);
        }
        cur = best;
        cur_dist = best_dist;
    }
}

/// Heap estimate for std's hashbrown-backed `HashSet`. `capacity()` is
/// the *usable* capacity — the table actually allocates
/// `buckets = next_power_of_two(ceil(capacity · 8/7))` slots (7/8 max
/// load factor, power-of-two table sizes), each costing one element
/// plus one control byte, with a small constant for the header and
/// control-byte group padding. The previous `capacity · (elem + 1)`
/// formula silently dropped both the load-factor headroom and the
/// power-of-two round-up — an undercount of up to ~2× right after a
/// table growth.
fn hash_set_heap_bytes(set: &HashSet<VertexId>) -> usize {
    const HEADER_SLOP: usize = 32;
    if set.capacity() == 0 {
        return 0;
    }
    let buckets = (set.capacity() * 8).div_ceil(7).next_power_of_two();
    buckets * (std::mem::size_of::<VertexId>() + 1) + HEADER_SLOP
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;
    use octopus_meshgen::voxel::VoxelRegion;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    fn scan(mesh: &Mesh, q: &Aabb) -> Vec<VertexId> {
        mesh.positions()
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(**p))
            .map(|(i, _)| i as VertexId)
            .collect()
    }

    fn crawl_from_all_inside(crawler: &mut Crawler, mesh: &Mesh, q: &Aabb) -> Vec<VertexId> {
        crawler.begin_query(mesh.num_vertices());
        let mut out = Vec::new();
        for (i, p) in mesh.positions().iter().enumerate() {
            if q.contains(*p) {
                crawler.seed(i as VertexId, &mut out);
                break; // single seed: box meshes are connected inside q
            }
        }
        crawler.crawl(mesh, q, &mut out);
        out
    }

    #[test]
    fn crawl_collects_exactly_the_contained_vertices_both_strategies() {
        let mesh = box_mesh(5);
        let q = Aabb::new(Point3::splat(0.15), Point3::splat(0.75));
        for strategy in [VisitedStrategy::EpochArray, VisitedStrategy::HashSet] {
            let mut c = Crawler::new(mesh.num_vertices(), strategy);
            let mut got = crawl_from_all_inside(&mut c, &mesh, &q);
            got.sort_unstable();
            assert_eq!(got, scan(&mesh, &q), "{strategy:?}");
        }
    }

    #[test]
    fn consecutive_queries_reuse_scratch_state_correctly() {
        let mesh = box_mesh(4);
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        for step in 0..5 {
            let lo = 0.1 + 0.05 * step as f32;
            let q = Aabb::new(Point3::splat(lo), Point3::splat(lo + 0.5));
            let mut got = crawl_from_all_inside(&mut c, &mesh, &q);
            got.sort_unstable();
            assert_eq!(got, scan(&mesh, &q), "query {step}");
        }
    }

    #[test]
    fn directed_walk_reaches_query_on_convex_mesh() {
        let mesh = box_mesh(6);
        let q = Aabb::new(Point3::splat(0.4), Point3::splat(0.6));
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        c.begin_query(mesh.num_vertices());
        // Start from the far corner (vertex at (0,0,0) exists in lattice).
        let start = 0;
        let found = c
            .directed_walk(&mesh, &q, start)
            .expect("walk must reach the query");
        assert!(q.contains(mesh.position(found)));
        assert!(c.walk_visited > 1);
    }

    #[test]
    fn directed_walk_returns_none_for_disjoint_query() {
        let mesh = box_mesh(4);
        let q = Aabb::new(Point3::splat(5.0), Point3::splat(6.0));
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        c.begin_query(mesh.num_vertices());
        assert_eq!(c.directed_walk(&mesh, &q, 0), None);
    }

    #[test]
    fn walk_starting_inside_returns_immediately() {
        let mesh = box_mesh(4);
        let q = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        c.begin_query(mesh.num_vertices());
        assert_eq!(c.directed_walk(&mesh, &q, 3), Some(3));
        assert_eq!(c.walk_visited, 1);
    }

    #[test]
    fn seed_deduplicates() {
        let mesh = box_mesh(2);
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::HashSet);
        c.begin_query(mesh.num_vertices());
        let mut out = Vec::new();
        assert!(c.seed(5, &mut out));
        assert!(!c.seed(5, &mut out));
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn epoch_array_grows_after_restructuring_adds_vertices() {
        let mut mesh = box_mesh(2);
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        let q = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let _ = crawl_from_all_inside(&mut c, &mesh, &q);
        mesh.enable_restructuring().unwrap();
        mesh.refine_tet(0).unwrap(); // adds a vertex
        let mut got = crawl_from_all_inside(&mut c, &mesh, &q);
        got.sort_unstable();
        assert_eq!(got, scan(&mesh, &q));
    }

    #[test]
    fn epoch_stamps_clear_on_wrap() {
        let mut s = EpochStamps::with_len(4);
        s.begin(4);
        assert!(s.mark(2));
        assert!(s.is_marked(2));
        // Jump to the wrap point: the next generation restarts the
        // counter at 1 — the same value slot 2 already holds. Without
        // the wrap-clear, the stale stamp would alias as "marked".
        s.force_epoch(u32::MAX);
        s.begin(4);
        assert!(!s.is_marked(2), "stale stamp aliased across the wrap");
        assert!(s.mark(2), "stale stamp must not block a fresh mark");
    }

    #[test]
    fn pristine_stamps_read_as_unmarked() {
        // Regression: a never-used set must not claim everything is
        // marked (epoch and stamps both starting at 0 would).
        let s = EpochStamps::with_len(3);
        assert!(!s.is_marked(0));
        let mut s = EpochStamps::default();
        s.begin(2);
        assert!(s.mark(1));

        // Same property surfaced through the public scratch API.
        let mesh = box_mesh(2);
        let octopus = crate::Octopus::new(&mesh).unwrap();
        let mut scratch = octopus.make_scratch(&mesh);
        assert!(!scratch.visited().contains(0), "pristine scratch");
        assert!(scratch.mark_visited(0));
    }

    #[test]
    fn epoch_stamps_resize_starts_unmarked() {
        let mut s = EpochStamps::with_len(2);
        s.begin(2);
        assert!(s.mark(0));
        // Grow mid-lifetime: the new slots must not read as marked, in
        // this generation or the next.
        s.begin(5);
        assert!(s.mark(4));
        s.begin(5);
        assert!(s.mark(4));
    }

    #[test]
    fn crawler_epoch_wraparound_does_not_alias_stale_entries() {
        // Regression test: a query stamps vertices with epoch 1; after
        // the u32 counter wraps, the epoch is 1 again. If the wrap did
        // not clear the stamp array, every vertex from that old query
        // would falsely read as already visited and the crawl would
        // return an empty result.
        let mesh = box_mesh(4);
        let q = Aabb::new(Point3::splat(0.1), Point3::splat(0.9));
        let mut c = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        let expected = scan(&mesh, &q);
        let mut first = crawl_from_all_inside(&mut c, &mesh, &q); // epoch 1
        first.sort_unstable();
        assert_eq!(first, expected);
        // Simulate the u32::MAX - 1 intermediate queries.
        c.force_epoch(u32::MAX);
        for round in 0..3 {
            let mut got = crawl_from_all_inside(&mut c, &mesh, &q);
            got.sort_unstable();
            assert_eq!(got, expected, "query {round} after the wrap");
        }
    }

    #[test]
    fn hash_set_accounting_covers_bucket_overhead() {
        // A query touching every vertex puts the whole mesh in the
        // visited set of both strategies — the apples-to-apples point
        // for the two accounting arms.
        let mesh = box_mesh(6);
        let universe = Aabb::new(Point3::splat(-1.0), Point3::splat(2.0));
        let mut dense = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        let mut sparse = Crawler::new(mesh.num_vertices(), VisitedStrategy::HashSet);
        let a = crawl_from_all_inside(&mut dense, &mesh, &universe);
        let b = crawl_from_all_inside(&mut sparse, &mesh, &universe);
        assert_eq!(a.len(), mesh.num_vertices());
        assert_eq!(a.len(), b.len());

        // The estimate must cover at least the real table: ≥ 8/7 of the
        // usable capacity in buckets, ≥ 5 bytes per bucket. The old
        // `capacity·(4+1)` formula fails this by exactly the load-factor
        // headroom.
        let cap = sparse.set.capacity();
        assert!(cap >= mesh.num_vertices());
        let sparse_bytes = hash_set_heap_bytes(&sparse.set);
        assert!(
            sparse_bytes >= (cap * 8).div_ceil(7) * (std::mem::size_of::<VertexId>() + 1),
            "estimate {sparse_bytes} undercounts the load-factor headroom (capacity {cap})"
        );

        // Against the EpochArray arm: a full hash table costs strictly
        // more per vertex (5 bytes per bucket at ≤ 7/8 load) than the
        // 4-byte epoch stamp, so the dense strategy must report less.
        assert!(
            dense.memory_bytes() < sparse.memory_bytes(),
            "dense {} vs sparse {}: full-coverage hash set must cost more than stamps",
            dense.memory_bytes(),
            sparse.memory_bytes()
        );
    }

    #[test]
    fn memory_accounting_differs_between_strategies() {
        let mesh = box_mesh(6);
        let q = Aabb::new(Point3::splat(0.45), Point3::splat(0.55));
        let mut dense = Crawler::new(mesh.num_vertices(), VisitedStrategy::EpochArray);
        let mut sparse = Crawler::new(mesh.num_vertices(), VisitedStrategy::HashSet);
        let _ = crawl_from_all_inside(&mut dense, &mesh, &q);
        let _ = crawl_from_all_inside(&mut sparse, &mesh, &q);
        // Dense pays for all vertices; sparse only for touched ones.
        assert!(dense.memory_bytes() >= mesh.num_vertices() * 4);
        assert!(sparse.memory_bytes() < dense.memory_bytes());
    }
}
