//! Maintenance invariants of [`SurfaceIndex`] (§IV-E): the surface set
//! is a pure function of connectivity — unchanged by arbitrary
//! deformation, updated exactly by the deltas that connectivity
//! restructuring reports — and the index behaves like a set under any
//! insert/remove interleaving.

use octopus_core::{ExecutorMetrics, Octopus, SurfaceIndex};
use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, Point3, VertexId};
use octopus_sim::{Deformation, SmoothRandomField};
use octopus_telemetry::Registry;
use octopus_testkit::random_mesh;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn as_set(idx: &SurfaceIndex) -> BTreeSet<VertexId> {
    idx.ids().iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The index is a faithful set under arbitrary insert/remove
    /// interleavings (checked against a BTreeSet model), including
    /// duplicate inserts and removes of absent ids.
    #[test]
    fn insert_remove_matches_set_model(seed in 0u64..10_000, ops in 1usize..400) {
        let mut rng = SplitMix64::new(seed);
        let mut idx = SurfaceIndex::default();
        let mut model = BTreeSet::new();
        for _ in 0..ops {
            let v = rng.below(64) as VertexId; // small id space forces collisions
            if rng.chance(0.45) {
                idx.remove(v);
                model.remove(&v);
            } else {
                idx.insert(v);
                model.insert(v);
            }
            prop_assert_eq!(idx.len(), model.len());
            prop_assert_eq!(idx.is_empty(), model.is_empty());
            prop_assert!(model.iter().all(|&m| idx.contains(m)));
        }
        prop_assert_eq!(as_set(&idx), model);
    }

    /// Pure deformation: rewriting every position leaves a freshly
    /// built surface index identical — zero maintenance is sound.
    #[test]
    fn deformation_leaves_surface_index_unchanged(
        seed in 0u64..5_000,
        amplitude in 0.001f32..0.1,
        steps in 1u32..5,
    ) {
        let mut mesh = random_mesh(4, 0.7, seed);
        prop_assume!(mesh.num_vertices() > 0);
        let before = as_set(&SurfaceIndex::build(&mesh).unwrap());
        let rest = mesh.positions().to_vec();
        let mut field = SmoothRandomField::new(amplitude, 3, seed ^ 0xD3F0);
        for step in 1..=steps {
            field.apply_step(step, &rest, mesh.positions_mut());
        }
        let after = as_set(&SurfaceIndex::build(&mesh).unwrap());
        prop_assert_eq!(before, after);
    }

    /// Restructuring: the delta stream from interleaved cell removals
    /// and refinements, applied incrementally, keeps the index equal to
    /// a from-scratch rebuild after every single operation.
    #[test]
    fn restructure_deltas_track_rebuild(seed in 0u64..5_000, ops in 1usize..20) {
        let mut mesh = random_mesh(3, 1.0, seed); // solid box
        mesh.enable_restructuring().unwrap();
        let mut idx = SurfaceIndex::build(&mesh).unwrap();
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        for _ in 0..ops {
            if mesh.num_cells() <= 1 {
                break;
            }
            let cell = loop {
                let c = rng.index(mesh.cell_capacity()) as u32;
                if mesh.is_cell_alive(c) {
                    break c;
                }
            };
            let delta = if rng.chance(0.5) {
                mesh.remove_cell(cell).unwrap()
            } else {
                mesh.refine_tet(cell).unwrap().1
            };
            idx.apply_delta(&delta);
            prop_assert_eq!(
                as_set(&idx),
                as_set(&SurfaceIndex::build(&mesh).unwrap()),
                "index diverged from rebuild mid-sequence"
            );
        }
    }
}

/// Deterministic surface transition: refining an all-interior tet adds a
/// centroid that is *not* on the surface (the delta is vacuous for the
/// index), and removing one of the sub-tets then promotes that centroid
/// onto the surface — the delta stream reports both facts exactly.
#[test]
fn interior_refinement_then_removal_promotes_centroid() {
    let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
    let mut mesh = octopus_meshgen::tet::tetrahedralize(
        &octopus_meshgen::voxel::VoxelRegion::solid_box(&bounds, 3, 3, 3),
    )
    .unwrap();
    mesh.enable_restructuring().unwrap();
    let mut idx = SurfaceIndex::build(&mesh).unwrap();

    // The centre voxel's tets touch only interior vertices.
    let interior = (0..mesh.cell_capacity() as u32)
        .find(|&c| mesh.is_cell_alive(c) && mesh.cell(c).iter().all(|&v| !idx.contains(v)))
        .expect("a 3x3x3 solid box has an all-interior cell");

    let (centroid, delta) = mesh.refine_tet(interior).unwrap();
    idx.apply_delta(&delta);
    assert!(
        !idx.contains(centroid),
        "centroid of an interior tet must not join the surface"
    );
    assert_eq!(as_set(&idx), as_set(&SurfaceIndex::build(&mesh).unwrap()));

    // Removing one sub-tet leaves the centroid's other faces exposed.
    let sub = (0..mesh.cell_capacity() as u32)
        .find(|&c| mesh.is_cell_alive(c) && mesh.cell(c).contains(&centroid))
        .expect("refinement created sub-tets referencing the centroid");
    let delta = mesh.remove_cell(sub).unwrap();
    assert!(
        delta.added.contains(&centroid),
        "removal must report the promotion"
    );
    idx.apply_delta(&delta);
    assert!(
        idx.contains(centroid),
        "centroid must now be a surface vertex"
    );
    assert_eq!(as_set(&idx), as_set(&SurfaceIndex::build(&mesh).unwrap()));
}

/// Memory-gauge consistency: [`Octopus::publish_memory`] registers the
/// surface-index and crawler-scratch heap sizes as gauges whose sum
/// always equals [`Octopus::memory_bytes`], and the reading is monotone
/// non-decreasing under a growing query workload — scratch structures
/// only gain capacity, and the surface index does not change without a
/// restructure.
#[test]
fn memory_gauges_track_memory_bytes_monotonically() {
    let mut mesh = random_mesh(5, 1.0, 7);
    let mut octopus = Octopus::new(&mesh).unwrap();
    let registry = Registry::new(true);
    let metrics = ExecutorMetrics::register(&registry);
    octopus.attach_metrics(&metrics);

    let mut out = Vec::new();
    let mut last = 0usize;
    for i in 1..=4u32 {
        // Growing boxes touch ever more vertices, so the crawler's
        // visited/queue scratch can only gain capacity between queries.
        let q = Aabb::cube(Point3::splat(0.5), 0.1 + 0.15 * i as f32);
        octopus.query(&mesh, &q, &mut out);
        let published = octopus.publish_memory();
        assert_eq!(
            published,
            octopus.memory_bytes(),
            "publish_memory must return exactly what memory_bytes reports"
        );
        let snap = registry.snapshot();
        let gauge_total =
            snap.gauge("executor_surface_index_bytes") + snap.gauge("executor_scratch_bytes");
        assert_eq!(
            gauge_total, published as f64,
            "the two gauges must sum to the published total"
        );
        assert!(
            published >= last,
            "memory reading regressed under a growing workload: {published} < {last}"
        );
        last = published;
    }

    // A restructure-derived executor carries the metrics attachment
    // forward and keeps the gauges consistent with its own footprint.
    mesh.enable_restructuring().unwrap();
    let cell = (0..mesh.cell_capacity() as u32)
        .find(|&c| mesh.is_cell_alive(c))
        .expect("mesh has cells");
    let (_, delta) = mesh.refine_tet(cell).unwrap();
    let derived = octopus.restructured(&mesh, &delta);
    let published = derived.publish_memory();
    assert_eq!(published, derived.memory_bytes());
    let snap = registry.snapshot();
    assert_eq!(
        snap.gauge("executor_surface_index_bytes") + snap.gauge("executor_scratch_bytes"),
        published as f64
    );
}
