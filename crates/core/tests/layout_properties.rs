//! Properties of the v2 layout engine (cache-oblivious recursive
//! bisection + blocked-SoA hot path): the permutation is a true
//! permutation with balanced splits, relabelling is invisible to query
//! results on both random and neuron meshes, and the SoA position
//! mirror stays equal to the canonical `Vec<Point3>` through
//! deformation, restructuring and re-layout.

use octopus_core::layout::{
    cache_oblivious_layout, cache_oblivious_permutation_stats, curve_permutation, CurveKind,
};
use octopus_core::Octopus;
use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, Point3, VertexId};
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Deformation, SmoothRandomField};
use octopus_testkit::{random_mesh, scan_active, sorted};
use proptest::prelude::*;

/// Queries a mesh through the full executor and returns the sorted
/// result.
fn query(mesh: &Mesh, q: &Aabb) -> Vec<VertexId> {
    let mut octopus = Octopus::new(mesh).expect("surface");
    let mut out = Vec::new();
    octopus.query(mesh, q, &mut out);
    sorted(out)
}

/// A box around a random active vertex, sized to clip a non-trivial
/// neighbourhood out of the mesh.
fn probe_box(mesh: &Mesh, seed: u64, half: f32) -> Aabb {
    let mut rng = SplitMix64::new(seed);
    let v = rng.index(mesh.num_vertices());
    let c = mesh.position(v as VertexId);
    Aabb::new(
        Point3::new(c.x - half, c.y - half, c.z - half),
        Point3::new(c.x + half, c.y + half, c.z + half),
    )
}

/// Asserts that querying `laid_out` answers exactly what querying
/// `original` answers, modulo the relabelling `perm` (old id → new id).
fn assert_layout_invisible(original: &Mesh, laid_out: &Mesh, perm: &[VertexId], q: &Aabb) {
    let base = query(original, q);
    let relabelled = query(laid_out, q);
    let mapped = sorted(base.iter().map(|&v| perm[v as usize]).collect());
    assert_eq!(
        mapped, relabelled,
        "layout changed the answer set for {q:?}"
    );
    // And both agree with the active-vertex linear scan ground truth.
    assert_eq!(relabelled, sorted(scan_active(laid_out, q)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache-oblivious order is a bijection on vertex ids for
    /// arbitrary (often multi-component) random meshes, and every
    /// split it took was balanced to within one vertex.
    #[test]
    fn permutation_is_a_balanced_bijection(seed in 0u64..10_000, fill in 0.3f64..1.0) {
        let mesh = random_mesh(4, fill, seed);
        prop_assume!(mesh.num_vertices() > 0);
        let (perm, stats) = cache_oblivious_permutation_stats(&mesh);
        let mut seen = perm.clone();
        seen.sort_unstable();
        let expect: Vec<VertexId> = (0..mesh.num_vertices() as u32).collect();
        prop_assert_eq!(seen, expect, "not a permutation");
        prop_assert!(
            stats.max_imbalance <= 1,
            "split imbalance {} exceeds 1",
            stats.max_imbalance
        );
    }

    /// Re-laying out a random mesh never changes what a query answers:
    /// the result set relabels exactly by the permutation, and agrees
    /// with the linear-scan ground truth.
    #[test]
    fn queries_are_layout_invariant_on_random_meshes(
        seed in 0u64..10_000,
        fill in 0.4f64..1.0,
        half in 0.08f32..0.35,
    ) {
        let mesh = random_mesh(4, fill, seed);
        prop_assume!(mesh.num_vertices() > 0);
        let (laid_out, perm) = cache_oblivious_layout(&mesh);
        let q = probe_box(&mesh, seed ^ 0xA5A5, half);
        assert_layout_invisible(&mesh, &laid_out, &perm, &q);
    }

    /// The blocked SoA mirror answers exactly the canonical positions
    /// after any deform → restructure → re-layout sequence, including
    /// the lazily rebuilt mirror of a cloned mesh.
    #[test]
    fn soa_mirror_survives_deform_restructure_relayout(
        seed in 0u64..10_000,
        amplitude in 0.001f32..0.08,
        ops in 1usize..12,
    ) {
        let mut mesh = random_mesh(3, 1.0, seed); // solid box
        mesh.enable_restructuring().expect("fresh mesh");
        // Deform: rewrite every position through the canonical slice.
        let rest = mesh.positions().to_vec();
        let mut field = SmoothRandomField::new(amplitude, 3, seed ^ 0x50A);
        field.apply_step(1, &rest, mesh.positions_mut());
        // Restructure: random removals/refinements change vertex count
        // and orphan slots.
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        for _ in 0..ops {
            if mesh.num_cells() <= 1 {
                break;
            }
            let cell = loop {
                let c = rng.index(mesh.cell_capacity()) as u32;
                if mesh.is_cell_alive(c) {
                    break c;
                }
            };
            if rng.chance(0.5) {
                mesh.remove_cell(cell).expect("alive cell");
            } else {
                mesh.refine_tet(cell).expect("alive tet");
            }
        }
        // Re-layout: a full relabelling rebuilds every block.
        let (laid_out, _) = cache_oblivious_layout(&mesh);
        for m in [&mesh, &laid_out] {
            let blocks = m.position_blocks();
            prop_assert_eq!(blocks.len(), m.positions().len());
            for (v, p) in m.positions().iter().enumerate() {
                let got = blocks.get(v);
                prop_assert!(
                    got == *p,
                    "SoA mirror desynced at vertex {}: {:?} != {:?}",
                    v, got, p
                );
            }
        }
    }
}

/// The neuron mesh (the bench's geometry): the cache-oblivious order
/// is a bijection and queries are layout invariant. One deterministic
/// case — the mesh is too expensive to regenerate per proptest case.
#[test]
fn neuron_queries_are_layout_invariant() {
    let mesh = neuron(NeuroLevel::L1, 0.5).expect("neuron");
    let perm = curve_permutation(&mesh, CurveKind::CacheOblivious);
    let mut seen = perm.clone();
    seen.sort_unstable();
    let expect: Vec<VertexId> = (0..mesh.num_vertices() as u32).collect();
    assert_eq!(seen, expect, "not a permutation");
    let (laid_out, perm) = cache_oblivious_layout(&mesh);
    for (seed, half) in [(1u64, 0.1f32), (2, 0.2), (3, 0.3)] {
        let q = probe_box(&mesh, seed, half);
        assert_layout_invisible(&mesh, &laid_out, &perm, &q);
    }
}
