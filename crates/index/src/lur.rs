//! The Lazy Update R-tree (LUR-Tree) of Kwon et al. [13].
//!
//! "The LUR-Tree … avoids costly R-Tree insertions if the object remains
//! inside the minimum bounding rectangle of the leaf node" (§II-A). At
//! every time step each vertex's new position is compared with the MBR
//! of the leaf currently holding it: if it stays inside, the entry is
//! patched in place (no structural maintenance); if it escapes, the
//! classic delete + reinsert pays the full structural cost.
//!
//! Because the paper's simulations move *every* vertex a little at every
//! step, the in-place path dominates, but the per-object probe itself is
//! already O(V) hash lookups per step — exactly the maintenance overhead
//! Fig. 6(a) charges to this approach (80 % of its response time).

use crate::rtree::{point_key, LeafEntry, RTree};
use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// LUR-Tree: an R-tree of point entries with lazy in-MBR updates.
#[derive(Clone, Debug)]
pub struct LurTree {
    tree: RTree,
    /// Statistics: updates applied in place vs structural re-insertions.
    lazy_updates: u64,
    hard_updates: u64,
    initialized: bool,
}

impl LurTree {
    /// Creates a LUR-Tree with the paper's fanout (110).
    pub fn new() -> LurTree {
        LurTree::with_fanout(crate::rtree::DEFAULT_FANOUT)
    }

    /// Creates a LUR-Tree with a custom R-tree fanout.
    pub fn with_fanout(fanout: usize) -> LurTree {
        LurTree {
            tree: RTree::with_fanout(fanout),
            lazy_updates: 0,
            hard_updates: 0,
            initialized: false,
        }
    }

    /// Bulk-builds the initial tree (the preprocessing step the paper
    /// reports separately from response time).
    pub fn build(&mut self, positions: &[Point3]) {
        let entries = positions
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                id: i as VertexId,
                key: point_key(*p),
            })
            .collect();
        self.tree.bulk_load(entries);
        self.initialized = true;
    }

    /// Number of updates that stayed inside their leaf MBR.
    pub fn lazy_update_count(&self) -> u64 {
        self.lazy_updates
    }

    /// Number of updates that required delete + reinsert.
    pub fn hard_update_count(&self) -> u64 {
        self.hard_updates
    }

    /// The underlying R-tree (tests).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }
}

impl Default for LurTree {
    fn default() -> Self {
        LurTree::new()
    }
}

impl DynamicIndex for LurTree {
    fn name(&self) -> &'static str {
        "LUR-Tree"
    }

    fn on_step(&mut self, positions: &[Point3]) {
        if !self.initialized || self.tree.len() != positions.len() {
            self.build(positions);
            return;
        }
        for (i, p) in positions.iter().enumerate() {
            let id = i as VertexId;
            let key = point_key(*p);
            // Lazy path: patch the entry when the new position stays in
            // the holding leaf's MBR.
            if self.tree.update_in_place(id, key) {
                self.lazy_updates += 1;
            } else {
                self.hard_updates += 1;
                self.tree.remove(id);
                self.tree.insert(id, key);
            }
        }
    }

    fn query(&self, q: &Aabb, _positions: &[Point3], out: &mut Vec<VertexId>) {
        self.tree.query_keys(q, out);
    }

    fn memory_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    #[test]
    fn stays_exact_across_small_motion() {
        let mut pts = random_points(2_000, 31);
        let mut t = LurTree::with_fanout(16);
        t.on_step(&pts); // initial build
        let mut rng = SplitMix64::new(8);
        for step in 0..6 {
            jitter_all(&mut pts, 0.01, 300 + step);
            t.on_step(&pts);
            t.tree().check_invariants();
            for qi in 0..8 {
                let q = random_query(&mut rng, 0.15);
                let mut out = Vec::new();
                t.query(&q, &pts, &mut out);
                assert_same_ids(out, &scan(&q, &pts), &format!("step {step} q{qi}"));
            }
        }
        // Tiny motion → mostly lazy updates.
        assert!(
            t.lazy_update_count() > t.hard_update_count(),
            "lazy {} vs hard {}",
            t.lazy_update_count(),
            t.hard_update_count()
        );
    }

    #[test]
    fn stays_exact_across_large_motion() {
        let mut pts = random_points(1_000, 32);
        let mut t = LurTree::with_fanout(8);
        t.on_step(&pts);
        let mut rng = SplitMix64::new(9);
        for step in 0..4 {
            jitter_all(&mut pts, 0.4, 900 + step); // violent motion
            t.on_step(&pts);
            t.tree().check_invariants();
            let q = random_query(&mut rng, 0.25);
            let mut out = Vec::new();
            t.query(&q, &pts, &mut out);
            assert_same_ids(out, &scan(&q, &pts), &format!("step {step}"));
        }
        assert!(
            t.hard_update_count() > 0,
            "large motion must trigger structural updates"
        );
    }

    #[test]
    fn first_step_builds_the_tree() {
        let pts = random_points(100, 33);
        let mut t = LurTree::new();
        t.on_step(&pts);
        assert_eq!(t.tree().len(), 100);
        assert_eq!(t.lazy_update_count() + t.hard_update_count(), 0);
    }

    #[test]
    fn memory_includes_tree_and_backpointers() {
        let pts = random_points(500, 34);
        let mut t = LurTree::new();
        t.on_step(&pts);
        assert!(t.memory_bytes() > 500 * std::mem::size_of::<LeafEntry>());
    }
}
