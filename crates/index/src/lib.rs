//! Competitor spatial indexes for dynamic mesh monitoring.
//!
//! These are the approaches the paper compares OCTOPUS against (§V-A),
//! re-implemented from their original descriptions:
//!
//! * [`LinearScan`] — the maintenance-free baseline; O(V) per query.
//! * [`Octree`] — a bucketed PR octree rebuilt from scratch at every time
//!   step (the "throwaway index" strategy of Dittrich et al. [8]); bucket
//!   capacity 10 000 as tuned in the paper.
//! * [`KdTree`] — median-split k-d tree, also rebuilt per step (the
//!   second lightweight throwaway option the paper cites [4]).
//! * [`RTree`] — in-memory R-tree with fanout 110 (the paper's setting),
//!   STR bulk loading, quadratic split and condense-on-delete. Substrate
//!   for the two spatio-temporal competitors:
//! * [`LurTree`] — the Lazy Update R-tree of Kwon et al. [13]: a position
//!   update that stays inside its leaf MBR is applied in place; only
//!   escapes pay delete + reinsert.
//! * [`QuTrade`] — the workload-aware grace-window index of Tzoumas et
//!   al. [24]: vertices are indexed by an enlarged box; updates only
//!   touch the tree when a vertex exits its window, and the window size
//!   adapts so fewer than 1 % of updates do (the paper's tuning).
//! * [`LuGrid`] — the update-tolerant grid of Xiong et al. [25]: eager
//!   insert into the new cell, *lazy* deletion from the old one, with
//!   stale-entry invalidation at query time and threshold compaction.
//! * [`TwoLevelHash`] — the adaptive two-level hashing of Kwon et
//!   al. [12]: slow objects live in a fine grid, fast objects in a
//!   coarse one, with adaptive promotion/demotion by observed escapes.
//! * [`UniformGrid`] — the stale grid OCTOPUS-CON uses to find a start
//!   vertex near the query (§IV-F); built once, never updated.
//! * [`SelectivityHistogram`] — equi-width spatial histogram for the cost
//!   model's selectivity input ([2], §IV-G).
//!
//! Everything implements [`DynamicIndex`], whose contract separates
//! `on_step` (per-time-step maintenance — what the paper bills as index
//! maintenance cost) from `query` (range execution). All results are
//! exact with respect to the positions passed to the latest `on_step`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grid;
pub mod histogram;
pub mod kdtree;
pub mod linear_scan;
pub mod lugrid;
pub mod lur;
pub mod octree;
pub mod qutrade;
pub mod rtree;
mod traits;
pub mod twolevel;

pub use grid::UniformGrid;
pub use histogram::{HistogramGrid, SelectivityHistogram};
pub use kdtree::KdTree;
pub use linear_scan::LinearScan;
pub use lugrid::LuGrid;
pub use lur::LurTree;
pub use octree::Octree;
pub use qutrade::QuTrade;
pub use rtree::RTree;
pub use traits::DynamicIndex;
pub use twolevel::TwoLevelHash;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for index correctness tests.
    use octopus_geom::rng::SplitMix64;
    use octopus_geom::{Aabb, Point3, VertexId};

    /// Uniform random points in the unit cube.
    pub fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Point3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect()
    }

    /// Moves every point by a small random displacement (the massive
    /// unpredictable per-step update).
    pub fn jitter_all(points: &mut [Point3], magnitude: f32, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        for p in points {
            p.x += rng.range_f32(-magnitude, magnitude);
            p.y += rng.range_f32(-magnitude, magnitude);
            p.z += rng.range_f32(-magnitude, magnitude);
        }
    }

    /// Ground-truth result by brute force.
    pub fn scan(q: &Aabb, positions: &[Point3]) -> Vec<VertexId> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(**p))
            .map(|(i, _)| i as VertexId)
            .collect()
    }

    /// Random query box inside the unit cube.
    pub fn random_query(rng: &mut SplitMix64, half: f32) -> Aabb {
        let c = Point3::new(
            rng.range_f32(0.0, 1.0),
            rng.range_f32(0.0, 1.0),
            rng.range_f32(0.0, 1.0),
        );
        Aabb::cube(c, half)
    }

    /// Asserts `got` (any order) equals `expected` (sorted).
    pub fn assert_same_ids(mut got: Vec<VertexId>, expected: &[VertexId], ctx: &str) {
        got.sort_unstable();
        assert_eq!(got, expected, "{ctx}");
    }
}
