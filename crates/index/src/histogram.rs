//! Equi-width spatial histogram for selectivity estimation.
//!
//! The analytical model (§IV-G) needs an estimate of query selectivity:
//! "we use the histogram based estimation technique proposed in [2]".
//! This is the baseline equi-width member of that family: bucket counts
//! over a uniform 3-D grid, with partial-overlap interpolation (a query
//! covering 30 % of a bucket's volume is charged 30 % of its count).

use octopus_geom::{Aabb, Point3};

/// Per-batch invariants of a histogram probe, hoisted once by
/// [`SelectivityHistogram::grid`]: clamped per-axis extents and bucket
/// sizes. Tied to the histogram it came from — feeding it to another
/// histogram gives garbage estimates (but no UB).
#[derive(Clone, Copy, Debug)]
pub struct HistogramGrid {
    /// Per-axis domain extent, clamped away from zero.
    len: [f32; 3],
    /// Per-axis bucket size.
    bucket: [f32; 3],
    /// Reciprocal bucket volume (buckets are equi-width, so one value
    /// serves every partial-overlap interpolation — the division the
    /// naive path re-pays per visited bucket). `0.0` flags a degenerate
    /// (flat) domain, which falls back to the exact overlap test.
    inv_bucket_vol: f64,
}

/// A 3-D equi-width histogram of vertex counts.
#[derive(Clone, Debug)]
pub struct SelectivityHistogram {
    res: usize,
    bounds: Aabb,
    counts: Vec<u32>,
    total: usize,
}

impl SelectivityHistogram {
    /// Builds a histogram with `res³` buckets over `bounds`.
    ///
    /// Positions outside `bounds` are clamped into border buckets, so the
    /// histogram always accounts for every vertex.
    pub fn build(positions: &[Point3], bounds: &Aabb, res: usize) -> SelectivityHistogram {
        assert!(res >= 1, "histogram resolution must be at least 1");
        let mut counts = vec![0u32; res * res * res];
        for p in positions {
            counts[Self::bucket_of(p, bounds, res)] += 1;
        }
        SelectivityHistogram {
            res,
            bounds: *bounds,
            counts,
            total: positions.len(),
        }
    }

    fn bucket_of(p: &Point3, bounds: &Aabb, res: usize) -> usize {
        let e = bounds.extent();
        let mut idx = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t = ((p[axis] - bounds.min[axis]) / len * res as f32).floor();
            idx[axis] = (t.max(0.0) as usize).min(res - 1);
        }
        idx[0] + res * (idx[1] + res * idx[2])
    }

    /// Precomputes the per-probe invariants — grid extents and bucket
    /// sizes, which [`SelectivityHistogram::estimate_selectivity`] would
    /// otherwise re-derive (including three divisions per visited
    /// bucket) on every call. Build one per *batch* and feed it to
    /// [`SelectivityHistogram::estimate_selectivity_with`]; the
    /// single-query path builds a throwaway one, so both paths compute
    /// bit-identical estimates.
    pub fn grid(&self) -> HistogramGrid {
        let e = self.bounds.extent();
        let r = self.res as f32;
        let bucket = [e.x / r, e.y / r, e.z / r];
        let vol = f64::from(bucket[0]) * f64::from(bucket[1]) * f64::from(bucket[2]);
        HistogramGrid {
            len: [
                e.x.max(f32::MIN_POSITIVE),
                e.y.max(f32::MIN_POSITIVE),
                e.z.max(f32::MIN_POSITIVE),
            ],
            bucket,
            inv_bucket_vol: if vol > 0.0 { 1.0 / vol } else { 0.0 },
        }
    }

    /// Bounds of bucket `(x, y, z)` under precomputed bucket sizes.
    #[inline]
    fn bucket_bounds(&self, g: &HistogramGrid, x: usize, y: usize, z: usize) -> Aabb {
        let [sx, sy, sz] = g.bucket;
        let min = Point3::new(
            self.bounds.min.x + x as f32 * sx,
            self.bounds.min.y + y as f32 * sy,
            self.bounds.min.z + z as f32 * sz,
        );
        Aabb::new(min, Point3::new(min.x + sx, min.y + sy, min.z + sz))
    }

    /// Estimated fraction of vertices inside `q` (the `Selectivity%`
    /// input of Eq. 2–6), in `[0, 1]`.
    pub fn estimate_selectivity(&self, q: &Aabb) -> f64 {
        self.estimate_selectivity_with(&self.grid(), q)
    }

    /// [`SelectivityHistogram::estimate_selectivity`] with the per-batch
    /// invariants hoisted into a caller-held [`HistogramGrid`] — the
    /// batch-probe entry point `Planner::decide_batch` uses (one `grid()`
    /// per batch instead of one per query).
    #[inline]
    pub fn estimate_selectivity_with(&self, g: &HistogramGrid, q: &Aabb) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let r = self.res;
        // Bucket index range overlapped by q.
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let len = g.len[axis];
            let t0 = ((q.min[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            let t1 = ((q.max[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            lo[axis] = (t0.max(0.0) as usize).min(r - 1);
            hi[axis] = (t1.max(0.0) as usize).min(r - 1);
        }
        let mut expected = 0.0f64;
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let count = self.counts[x + r * (y + r * z)];
                    if count == 0 {
                        continue;
                    }
                    let b = self.bucket_bounds(g, x, y, z);
                    // Equi-width buckets: one precomputed reciprocal
                    // replaces the per-bucket volume division of
                    // `overlap_fraction` (degenerate domains fall back
                    // to the exact test).
                    let frac = if g.inv_bucket_vol > 0.0 {
                        let inter = b.intersection(q);
                        if inter.is_empty() {
                            0.0
                        } else {
                            (inter.volume() * g.inv_bucket_vol).clamp(0.0, 1.0)
                        }
                    } else {
                        b.overlap_fraction(q)
                    };
                    expected += f64::from(count) * frac;
                }
            }
        }
        (expected / self.total as f64).clamp(0.0, 1.0)
    }

    /// The pre-hoisting estimator, kept verbatim as the
    /// `ablation_decide_batch` baseline: grid geometry re-derived per
    /// query and bucket sizes re-divided per visited bucket — exactly
    /// what every probe paid before [`SelectivityHistogram::grid`]
    /// existed. Same expressions in the same order, so the estimates
    /// are bit-identical to the hoisted path.
    #[doc(hidden)]
    pub fn estimate_selectivity_unhoisted(&self, q: &Aabb) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let r = self.res;
        let e = self.bounds.extent();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t0 = ((q.min[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            let t1 = ((q.max[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            lo[axis] = (t0.max(0.0) as usize).min(r - 1);
            hi[axis] = (t1.max(0.0) as usize).min(r - 1);
        }
        let mut expected = 0.0f64;
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let count = self.counts[x + r * (y + r * z)];
                    if count == 0 {
                        continue;
                    }
                    let (sx, sy, sz) = (e.x / r as f32, e.y / r as f32, e.z / r as f32);
                    let min = Point3::new(
                        self.bounds.min.x + x as f32 * sx,
                        self.bounds.min.y + y as f32 * sy,
                        self.bounds.min.z + z as f32 * sz,
                    );
                    let b = Aabb::new(min, Point3::new(min.x + sx, min.y + sy, min.z + sz));
                    expected += f64::from(count) * b.overlap_fraction(q);
                }
            }
        }
        (expected / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimated number of result vertices for `q`.
    pub fn estimate_count(&self, q: &Aabb) -> f64 {
        self.estimate_selectivity(q) * self.total as f64
    }

    /// Heap bytes used by the histogram.
    pub fn memory_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::random_points;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn whole_domain_has_selectivity_one() {
        let pts = random_points(1_000, 51);
        let h = SelectivityHistogram::build(&pts, &unit_bounds(), 8);
        let s = h.estimate_selectivity(&unit_bounds());
        assert!((s - 1.0).abs() < 1e-9, "{s}");
        assert!((h.estimate_count(&unit_bounds()) - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_query_has_selectivity_zero() {
        let pts = random_points(100, 52);
        let h = SelectivityHistogram::build(&pts, &unit_bounds(), 4);
        let far = Aabb::new(Point3::splat(5.0), Point3::splat(6.0));
        // Query outside bounds still hits clamped border buckets but with
        // zero volume overlap.
        assert_eq!(h.estimate_selectivity(&far), 0.0);
    }

    #[test]
    fn uniform_data_estimates_match_volume_fraction() {
        let pts = random_points(50_000, 53);
        let h = SelectivityHistogram::build(&pts, &unit_bounds(), 10);
        let q = Aabb::new(Point3::new(0.2, 0.2, 0.2), Point3::new(0.7, 0.7, 0.7));
        let est = h.estimate_selectivity(&q);
        let volume_fraction = q.volume(); // unit domain
        assert!(
            (est - volume_fraction).abs() < 0.02,
            "estimate {est} vs volume {volume_fraction}"
        );
        // And both should be close to the true selectivity.
        let actual = pts.iter().filter(|p| q.contains(**p)).count() as f64 / pts.len() as f64;
        assert!(
            (est - actual).abs() < 0.02,
            "estimate {est} vs actual {actual}"
        );
    }

    #[test]
    fn partial_bucket_interpolation() {
        // One point per bucket along x on a res-2 histogram.
        let pts = vec![Point3::new(0.25, 0.5, 0.5), Point3::new(0.75, 0.5, 0.5)];
        let h = SelectivityHistogram::build(&pts, &unit_bounds(), 2);
        // A query covering exactly the left half charges the whole left
        // bucket and none of the right.
        let left = Aabb::new(Point3::ORIGIN, Point3::new(0.5, 1.0, 1.0));
        assert!((h.estimate_selectivity(&left) - 0.5).abs() < 1e-6);
        // A quarter-width slab covers half the left bucket's volume.
        let slab = Aabb::new(Point3::ORIGIN, Point3::new(0.25, 1.0, 1.0));
        assert!((h.estimate_selectivity(&slab) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn skewed_data_beats_volume_assumption() {
        // Everything clustered in one corner.
        let pts: Vec<Point3> = (0..1_000)
            .map(|i| Point3::new(0.05 + (i % 10) as f32 * 0.001, 0.05, 0.05))
            .collect();
        let h = SelectivityHistogram::build(&pts, &unit_bounds(), 8);
        let corner = Aabb::new(Point3::ORIGIN, Point3::splat(0.125));
        let est = h.estimate_selectivity(&corner);
        assert!(est > 0.9, "histogram must see the cluster: {est}");
        let empty_corner = Aabb::new(Point3::splat(0.875), Point3::splat(1.0));
        assert!(h.estimate_selectivity(&empty_corner) < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let h = SelectivityHistogram::build(&[], &unit_bounds(), 4);
        assert_eq!(h.estimate_selectivity(&unit_bounds()), 0.0);
        assert!(h.memory_bytes() > 0);
    }
}
