//! LU-Grid: update-tolerant grid indexing (Xiong, Mokbel, Aref [25]).
//!
//! "The LU-Grid … reduce[s] the update cost by avoiding expensive index
//! maintenance if the change in location of the updated object is very
//! low" (§II-A). The disk-era design defers the expensive half of an
//! update: when an object moves to a new grid cell, it is inserted there
//! immediately (queries must see fresh data) but the *deletion* from the
//! old cell is lazy — the stale entry is left behind and invalidated on
//! the fly, using a per-object current-cell table as the source of
//! truth. Cells are compacted when their stale fraction grows.
//!
//! In-memory this saves the random write to the old cell's vector on the
//! update path at the cost of filtering stale entries during queries —
//! the same update/query trade the paper's grace-window discussion
//! covers.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Fraction of stale entries that triggers a cell compaction.
const COMPACT_THRESHOLD: f32 = 0.5;

/// An update-tolerant uniform grid with lazy deletion.
#[derive(Clone, Debug)]
pub struct LuGrid {
    res: usize,
    bounds: Aabb,
    /// Per-cell entry lists; entries may be stale (see `current_cell`).
    cells: Vec<Vec<VertexId>>,
    /// Per-cell count of stale entries (compaction heuristic).
    stale: Vec<u32>,
    /// Source of truth: the cell each object currently belongs to
    /// (`u32::MAX` = not indexed yet).
    current_cell: Vec<u32>,
    /// Statistics.
    lazy_updates: u64,
    hard_updates: u64,
    compactions: u64,
    initialized: bool,
}

impl LuGrid {
    /// Creates an index with `res³` cells over `bounds`.
    pub fn new(bounds: &Aabb, res: usize) -> LuGrid {
        assert!(res >= 1, "grid resolution must be at least 1");
        LuGrid {
            res,
            bounds: *bounds,
            cells: vec![Vec::new(); res * res * res],
            stale: vec![0; res * res * res],
            current_cell: Vec::new(),
            lazy_updates: 0,
            hard_updates: 0,
            compactions: 0,
            initialized: false,
        }
    }

    fn cell_of(&self, p: &Point3) -> u32 {
        let r = self.res;
        let e = self.bounds.extent();
        let mut idx = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t = ((p[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            idx[axis] = (t.max(0.0) as usize).min(r - 1);
        }
        (idx[0] + r * (idx[1] + r * idx[2])) as u32
    }

    /// Rebuilds from scratch (initial load or population change).
    pub fn build(&mut self, positions: &[Point3]) {
        for c in &mut self.cells {
            c.clear();
        }
        self.stale.fill(0);
        self.current_cell = vec![u32::MAX; positions.len()];
        for (i, p) in positions.iter().enumerate() {
            let c = self.cell_of(p);
            self.cells[c as usize].push(i as VertexId);
            self.current_cell[i] = c;
        }
        self.initialized = true;
    }

    /// Updates that stayed within their cell (no index work at all).
    pub fn lazy_update_count(&self) -> u64 {
        self.lazy_updates
    }

    /// Updates that inserted into a new cell (deletion deferred).
    pub fn hard_update_count(&self) -> u64 {
        self.hard_updates
    }

    /// Number of cell compactions performed.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Drops stale entries of cell `c` when they dominate.
    fn maybe_compact(&mut self, c: u32) {
        let len = self.cells[c as usize].len();
        if len >= 8 && self.stale[c as usize] as f32 >= COMPACT_THRESHOLD * len as f32 {
            let current = &self.current_cell;
            self.cells[c as usize].retain(|&id| current[id as usize] == c);
            self.stale[c as usize] = 0;
            self.compactions += 1;
        }
    }
}

impl DynamicIndex for LuGrid {
    fn name(&self) -> &'static str {
        "LU-Grid"
    }

    fn on_step(&mut self, positions: &[Point3]) {
        if !self.initialized || self.current_cell.len() != positions.len() {
            self.build(positions);
            return;
        }
        for (i, p) in positions.iter().enumerate() {
            let new_cell = self.cell_of(p);
            let old_cell = self.current_cell[i];
            if new_cell == old_cell {
                self.lazy_updates += 1;
                continue;
            }
            // Eager insert, lazy delete: the old cell keeps a stale entry
            // that queries invalidate against `current_cell`. Returning
            // to a cell that still holds this object's stale entry must
            // *revalidate* it instead of inserting a duplicate.
            self.hard_updates += 1;
            if self.cells[new_cell as usize].contains(&(i as VertexId)) {
                self.stale[new_cell as usize] = self.stale[new_cell as usize].saturating_sub(1);
            } else {
                self.cells[new_cell as usize].push(i as VertexId);
            }
            self.current_cell[i] = new_cell;
            self.stale[old_cell as usize] += 1;
            self.maybe_compact(old_cell);
        }
    }

    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>) {
        let r = self.res;
        let e = self.bounds.extent();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t0 = ((q.min[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            let t1 = ((q.max[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            lo[axis] = (t0.max(0.0) as usize).min(r - 1);
            hi[axis] = (t1.max(0.0) as usize).min(r - 1);
        }
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let c = (x + r * (y + r * z)) as u32;
                    for &id in &self.cells[c as usize] {
                        // Stale-entry invalidation + containment test.
                        if self.current_cell[id as usize] == c && q.contains(positions[id as usize])
                        {
                            out.push(id);
                        }
                    }
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let mut total = self.cells.capacity() * std::mem::size_of::<Vec<VertexId>>()
            + self.stale.capacity() * std::mem::size_of::<u32>()
            + self.current_cell.capacity() * std::mem::size_of::<u32>();
        for c in &self.cells {
            total += c.capacity() * std::mem::size_of::<VertexId>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn exact_after_motion_with_stale_entries() {
        let mut pts = random_points(1_200, 61);
        let mut g = LuGrid::new(&unit_bounds(), 8);
        g.on_step(&pts);
        let mut rng = SplitMix64::new(20);
        for step in 0..8 {
            jitter_all(&mut pts, 0.08, 800 + step);
            g.on_step(&pts);
            for qi in 0..8 {
                let q = random_query(&mut rng, 0.15);
                let mut out = Vec::new();
                g.query(&q, &pts, &mut out);
                assert_same_ids(out, &scan(&q, &pts), &format!("step {step} q{qi}"));
            }
        }
        assert!(g.hard_update_count() > 0, "motion must cross cells");
        assert!(g.lazy_update_count() > 0, "some updates stay in-cell");
    }

    #[test]
    fn small_motion_is_mostly_lazy() {
        let mut pts = random_points(500, 62);
        let mut g = LuGrid::new(&unit_bounds(), 4);
        g.on_step(&pts);
        jitter_all(&mut pts, 0.001, 7);
        g.on_step(&pts);
        assert!(g.lazy_update_count() > 10 * g.hard_update_count().max(1));
    }

    #[test]
    fn compaction_eventually_fires_and_preserves_results() {
        let mut pts = random_points(400, 63);
        let mut g = LuGrid::new(&unit_bounds(), 3);
        g.on_step(&pts);
        let mut rng = SplitMix64::new(21);
        for step in 0..30 {
            jitter_all(&mut pts, 0.25, 900 + step); // violent motion
            g.on_step(&pts);
        }
        assert!(
            g.compaction_count() > 0,
            "violent motion must trigger compactions"
        );
        let q = random_query(&mut rng, 0.3);
        let mut out = Vec::new();
        g.query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "after compactions");
    }

    #[test]
    fn rebuilds_on_population_change() {
        let mut g = LuGrid::new(&unit_bounds(), 4);
        g.on_step(&random_points(50, 64));
        let more = random_points(80, 65);
        g.on_step(&more);
        let q = unit_bounds();
        let mut out = Vec::new();
        g.query(&q, &more, &mut out);
        assert_eq!(out.len(), 80);
    }

    #[test]
    fn memory_accounting_positive() {
        let mut g = LuGrid::new(&unit_bounds(), 6);
        g.on_step(&random_points(300, 66));
        assert!(g.memory_bytes() > 300 * 4);
    }
}
