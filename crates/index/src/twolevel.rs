//! Adaptive two-level hashing for moving objects (Kwon, Lee, Choi,
//! Lee [12]).
//!
//! "The adaptive two-level hashing approach classifies objects according
//! to their speed of movement. Slow moving objects are indexed with a
//! fine-grained grid whereas it uses a coarse-grained grid for fast
//! objects. The index only needs to be updated once the object moves out
//! of the grid cell. Queries retrieve all grid cells intersecting with
//! the query and filter the objects that intersect with the grid cell
//! but not the query" (§II-A).
//!
//! Speed classification is adaptive: an object that keeps escaping its
//! fine cell is promoted to the coarse level (fewer, cheaper updates,
//! more query filtering); a coarse object that stays put for long is
//! demoted back. Both levels share the lazy-deletion machinery of a
//! cell-anchored design: work only happens on cell escapes.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Escapes within the observation window that promote an object to the
/// coarse level.
const PROMOTE_ESCAPES: u8 = 3;
/// Quiet steps that demote a coarse object back to the fine level.
const DEMOTE_QUIET_STEPS: u8 = 16;

/// One uniform grid level (cell-anchored, eager insert / eager delete —
/// in memory a swap-remove delete is cheap enough).
#[derive(Clone, Debug)]
struct Level {
    res: usize,
    cells: Vec<Vec<VertexId>>,
}

impl Level {
    fn new(res: usize) -> Level {
        Level {
            res,
            cells: vec![Vec::new(); res * res * res],
        }
    }

    fn cell_of(&self, p: &Point3, bounds: &Aabb) -> u32 {
        let r = self.res;
        let e = bounds.extent();
        let mut idx = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t = ((p[axis] - bounds.min[axis]) / len * r as f32).floor();
            idx[axis] = (t.max(0.0) as usize).min(r - 1);
        }
        (idx[0] + r * (idx[1] + r * idx[2])) as u32
    }

    fn insert(&mut self, cell: u32, id: VertexId) {
        self.cells[cell as usize].push(id);
    }

    fn remove(&mut self, cell: u32, id: VertexId) {
        let v = &mut self.cells[cell as usize];
        if let Some(pos) = v.iter().position(|&x| x == id) {
            v.swap_remove(pos);
        }
    }

    fn query_cells(&self, q: &Aabb, bounds: &Aabb) -> ([usize; 3], [usize; 3]) {
        let r = self.res;
        let e = bounds.extent();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t0 = ((q.min[axis] - bounds.min[axis]) / len * r as f32).floor();
            let t1 = ((q.max[axis] - bounds.min[axis]) / len * r as f32).floor();
            lo[axis] = (t0.max(0.0) as usize).min(r - 1);
            hi[axis] = (t1.max(0.0) as usize).min(r - 1);
        }
        (lo, hi)
    }

    fn memory_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<Vec<VertexId>>()
            + self.cells.iter().map(|c| c.capacity() * 4).sum::<usize>()
    }
}

/// Per-object bookkeeping.
#[derive(Clone, Copy, Debug)]
struct ObjectState {
    /// Current cell in the object's level.
    cell: u32,
    /// True when indexed in the coarse level.
    coarse: bool,
    /// Recent escape count (promotion signal).
    escapes: u8,
    /// Consecutive quiet steps (demotion signal).
    quiet: u8,
}

/// The adaptive two-level hash index.
#[derive(Clone, Debug)]
pub struct TwoLevelHash {
    bounds: Aabb,
    fine: Level,
    coarse: Level,
    objects: Vec<ObjectState>,
    promotions: u64,
    demotions: u64,
    initialized: bool,
}

impl TwoLevelHash {
    /// Creates the index over `bounds` with the given per-axis grid
    /// resolutions (`fine_res > coarse_res`).
    pub fn new(bounds: &Aabb, fine_res: usize, coarse_res: usize) -> TwoLevelHash {
        assert!(
            fine_res > coarse_res && coarse_res >= 1,
            "fine resolution must exceed coarse"
        );
        TwoLevelHash {
            bounds: *bounds,
            fine: Level::new(fine_res),
            coarse: Level::new(coarse_res),
            objects: Vec::new(),
            promotions: 0,
            demotions: 0,
            initialized: false,
        }
    }

    /// Loads all objects into the fine level (everything starts "slow").
    pub fn build(&mut self, positions: &[Point3]) {
        for c in &mut self.fine.cells {
            c.clear();
        }
        for c in &mut self.coarse.cells {
            c.clear();
        }
        self.objects = positions
            .iter()
            .map(|p| ObjectState {
                cell: self.fine.cell_of(p, &self.bounds),
                coarse: false,
                escapes: 0,
                quiet: 0,
            })
            .collect();
        for (i, o) in self.objects.iter().enumerate() {
            self.fine.cells[o.cell as usize].push(i as VertexId);
        }
        self.initialized = true;
    }

    /// Objects promoted to the coarse (fast) level so far.
    pub fn promotion_count(&self) -> u64 {
        self.promotions
    }

    /// Objects demoted back to the fine (slow) level so far.
    pub fn demotion_count(&self) -> u64 {
        self.demotions
    }

    /// Number of objects currently classified as fast.
    pub fn fast_object_count(&self) -> usize {
        self.objects.iter().filter(|o| o.coarse).count()
    }
}

impl DynamicIndex for TwoLevelHash {
    fn name(&self) -> &'static str {
        "TwoLevelHash"
    }

    fn on_step(&mut self, positions: &[Point3]) {
        if !self.initialized || self.objects.len() != positions.len() {
            self.build(positions);
            return;
        }
        for (i, p) in positions.iter().enumerate() {
            let id = i as VertexId;
            let o = self.objects[i];
            let level = if o.coarse { &self.coarse } else { &self.fine };
            let new_cell = level.cell_of(p, &self.bounds);
            if new_cell == o.cell {
                // In-cell: no index work. Track quiescence for demotion.
                let o = &mut self.objects[i];
                if o.coarse {
                    o.quiet = o.quiet.saturating_add(1);
                    if o.quiet >= DEMOTE_QUIET_STEPS {
                        // Demote: move into the fine level.
                        self.coarse.remove(o.cell, id);
                        let fine_cell = self.fine.cell_of(p, &self.bounds);
                        self.fine.insert(fine_cell, id);
                        *o = ObjectState {
                            cell: fine_cell,
                            coarse: false,
                            escapes: 0,
                            quiet: 0,
                        };
                        self.demotions += 1;
                    }
                } else {
                    o.escapes = o.escapes.saturating_sub(1).min(o.escapes); // decay
                }
                continue;
            }
            // Escape: relocate within the level, maybe promote.
            if o.coarse {
                self.coarse.remove(o.cell, id);
                self.coarse.insert(new_cell, id);
                let o = &mut self.objects[i];
                o.cell = new_cell;
                o.quiet = 0;
            } else {
                self.fine.remove(o.cell, id);
                let escapes = o.escapes + 1;
                if escapes >= PROMOTE_ESCAPES {
                    // Promote: this object is fast; coarse cells absorb
                    // its motion with far fewer relocations.
                    let coarse_cell = self.coarse.cell_of(p, &self.bounds);
                    self.coarse.insert(coarse_cell, id);
                    self.objects[i] = ObjectState {
                        cell: coarse_cell,
                        coarse: true,
                        escapes: 0,
                        quiet: 0,
                    };
                    self.promotions += 1;
                } else {
                    self.fine.insert(new_cell, id);
                    self.objects[i] = ObjectState {
                        cell: new_cell,
                        coarse: false,
                        escapes,
                        quiet: 0,
                    };
                }
            }
        }
    }

    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>) {
        for level in [&self.fine, &self.coarse] {
            let (lo, hi) = level.query_cells(q, &self.bounds);
            let r = level.res;
            for z in lo[2]..=hi[2] {
                for y in lo[1]..=hi[1] {
                    for x in lo[0]..=hi[0] {
                        for &id in &level.cells[x + r * (y + r * z)] {
                            if q.contains(positions[id as usize]) {
                                out.push(id);
                            }
                        }
                    }
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.fine.memory_bytes()
            + self.coarse.memory_bytes()
            + self.objects.capacity() * std::mem::size_of::<ObjectState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn exact_across_mixed_speed_motion() {
        let mut pts = random_points(1_000, 71);
        let mut idx = TwoLevelHash::new(&unit_bounds(), 12, 3);
        idx.on_step(&pts);
        let mut rng = SplitMix64::new(30);
        for step in 0..20 {
            // Half the objects move fast, half slowly.
            for (i, p) in pts.iter_mut().enumerate() {
                let mag = if i % 2 == 0 { 0.12 } else { 0.002 };
                p.x += rng.range_f32(-mag, mag);
                p.y += rng.range_f32(-mag, mag);
                p.z += rng.range_f32(-mag, mag);
            }
            idx.on_step(&pts);
            let q = random_query(&mut rng, 0.2);
            let mut out = Vec::new();
            idx.query(&q, &pts, &mut out);
            assert_same_ids(out, &scan(&q, &pts), &format!("step {step}"));
        }
        assert!(idx.promotion_count() > 0, "fast objects must get promoted");
        assert!(idx.fast_object_count() > 0);
    }

    #[test]
    fn stationary_objects_eventually_demote() {
        let mut pts = random_points(300, 72);
        let mut idx = TwoLevelHash::new(&unit_bounds(), 10, 2);
        idx.on_step(&pts);
        let mut rng = SplitMix64::new(31);
        // Violent phase: promote lots of objects.
        for step in 0..6 {
            jitter_all(&mut pts, 0.2, 100 + step);
            idx.on_step(&pts);
        }
        let promoted = idx.fast_object_count();
        assert!(promoted > 0);
        // Quiet phase: everything freezes → demotions.
        for _ in 0..(DEMOTE_QUIET_STEPS as usize + 2) {
            idx.on_step(&pts);
        }
        assert!(idx.demotion_count() > 0, "quiet objects must demote");
        assert!(idx.fast_object_count() < promoted);
        let q = random_query(&mut rng, 0.25);
        let mut out = Vec::new();
        idx.query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "after demotions");
    }

    #[test]
    fn slow_motion_needs_no_relocations() {
        let mut pts = random_points(400, 73);
        let mut idx = TwoLevelHash::new(&unit_bounds(), 8, 2);
        idx.on_step(&pts);
        jitter_all(&mut pts, 0.0005, 5);
        idx.on_step(&pts);
        assert_eq!(idx.promotion_count(), 0);
        let q = Aabb::cube(Point3::splat(0.5), 0.3);
        let mut out = Vec::new();
        idx.query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "slow motion");
    }

    #[test]
    #[should_panic(expected = "fine resolution must exceed coarse")]
    fn resolution_ordering_enforced() {
        TwoLevelHash::new(&unit_bounds(), 2, 4);
    }

    #[test]
    fn memory_accounting_positive() {
        let mut idx = TwoLevelHash::new(&unit_bounds(), 8, 2);
        idx.on_step(&random_points(200, 74));
        assert!(idx.memory_bytes() > 0);
    }
}
