//! In-memory R-tree (Guttman) with STR bulk loading.
//!
//! Substrate for the spatio-temporal competitors: the paper implements
//! both LUR-Tree and QU-Trade "based on the same in-memory R-Tree
//! implementation with a fanout of 110" (§V-A). Leaf entries are
//! `(object id, Aabb)`; point objects use degenerate boxes, QU-Trade uses
//! grace-window boxes.
//!
//! Supported operations: STR bulk load, insert with quadratic split,
//! delete with condense + reinsert, in-place entry updates (for the
//! LUR-Tree's lazy path), and range queries. An `object → leaf` back
//! pointer map makes deletes and lazy updates O(1) to locate, mirroring
//! the "hash index for quick lookups" the paper attributes to the
//! R-tree-based competitors in its memory accounting.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};
use std::collections::HashMap;

/// The paper's R-tree fanout (§V-A).
pub const DEFAULT_FANOUT: usize = 110;

const NO_NODE: u32 = u32::MAX;

/// A leaf entry: an object id and its indexed box.
#[derive(Clone, Copy, Debug)]
pub struct LeafEntry {
    /// Object (vertex) id.
    pub id: VertexId,
    /// Indexed key (point = degenerate box; QU-Trade = grace window).
    pub key: Aabb,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<u32>),
}

#[derive(Clone, Debug)]
struct Node {
    mbr: Aabb,
    parent: u32,
    kind: NodeKind,
}

/// An in-memory R-tree over `(id, Aabb)` entries.
///
/// ```
/// use octopus_geom::{Aabb, Point3};
/// use octopus_index::rtree::{point_key, RTree};
///
/// let mut tree = RTree::with_fanout(8);
/// for i in 0..100u32 {
///     tree.insert(i, point_key(Point3::new(i as f32, 0.0, 0.0)));
/// }
/// let mut hits = Vec::new();
/// tree.query_keys(&Aabb::cube(Point3::new(10.0, 0.0, 0.0), 2.5), &mut hits);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![8, 9, 10, 11, 12]);
/// tree.check_invariants();
/// ```
#[derive(Clone, Debug)]
pub struct RTree {
    max_entries: usize,
    min_entries: usize,
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    /// object id → leaf node index.
    object_leaf: HashMap<VertexId, u32>,
}

impl RTree {
    /// Creates an empty tree with the paper's fanout of 110.
    pub fn new() -> RTree {
        RTree::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree with a custom fanout (≥ 4). Minimum fill is
    /// 40 % of the fanout, Guttman's recommended setting.
    pub fn with_fanout(fanout: usize) -> RTree {
        assert!(fanout >= 4, "fanout must be at least 4");
        RTree {
            max_entries: fanout,
            min_entries: (fanout * 2 / 5).max(1),
            nodes: Vec::new(),
            free: Vec::new(),
            root: NO_NODE,
            len: 0,
            object_leaf: HashMap::new(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.max_entries
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.free.push(i);
    }

    // ------------------------------------------------------------------
    // Bulk loading (Sort-Tile-Recursive)
    // ------------------------------------------------------------------

    /// Replaces the tree contents with an STR bulk load of `entries`.
    ///
    /// This is the "bulkloading a new index" the paper considers the best
    /// case for R-tree-style competitors under massive updates (§II-A).
    pub fn bulk_load(&mut self, entries: Vec<LeafEntry>) {
        self.nodes.clear();
        self.free.clear();
        self.object_leaf.clear();
        self.root = NO_NODE;
        self.len = entries.len();
        if entries.is_empty() {
            return;
        }

        // Tile leaf level.
        let leaf_ids = self.str_pack_leaves(entries);
        // Build upper levels until a single root remains.
        let mut level = leaf_ids;
        while level.len() > 1 {
            level = self.str_pack_inner(level);
        }
        self.root = level[0];
        self.nodes[self.root as usize].parent = NO_NODE;
    }

    /// Packs entries into leaf nodes with STR tiling; returns node ids.
    fn str_pack_leaves(&mut self, mut entries: Vec<LeafEntry>) -> Vec<u32> {
        let cap = self.max_entries;
        let n = entries.len();
        let n_pages = n.div_ceil(cap);
        let s = (n_pages as f64).cbrt().ceil() as usize; // slabs per axis
        entries.sort_unstable_by(|a, b| a.key.center().x.total_cmp(&b.key.center().x));
        let slab_size = n.div_ceil(s);
        let mut leaves = Vec::with_capacity(n_pages);
        for slab in entries.chunks_mut(slab_size.max(1)) {
            slab.sort_unstable_by(|a, b| a.key.center().y.total_cmp(&b.key.center().y));
            let run_size = slab.len().div_ceil(s);
            for run in slab.chunks_mut(run_size.max(1)) {
                run.sort_unstable_by(|a, b| a.key.center().z.total_cmp(&b.key.center().z));
                for page in run.chunks(cap) {
                    let mbr = page.iter().fold(Aabb::EMPTY, |m, e| m.union(&e.key));
                    let node = self.alloc(Node {
                        mbr,
                        parent: NO_NODE,
                        kind: NodeKind::Leaf(page.to_vec()),
                    });
                    for e in page {
                        self.object_leaf.insert(e.id, node);
                    }
                    leaves.push(node);
                }
            }
        }
        leaves
    }

    /// Packs child nodes into parent nodes with STR tiling on centres.
    fn str_pack_inner(&mut self, mut children: Vec<u32>) -> Vec<u32> {
        let cap = self.max_entries;
        let n = children.len();
        let n_pages = n.div_ceil(cap);
        let s = (n_pages as f64).cbrt().ceil() as usize;
        let center = |this: &RTree, i: &u32| this.nodes[*i as usize].mbr.center();
        children.sort_unstable_by(|a, b| center(self, a).x.total_cmp(&center(self, b).x));
        let slab_size = n.div_ceil(s);
        let mut parents = Vec::with_capacity(n_pages);
        let mut chunks: Vec<Vec<u32>> = Vec::new();
        for slab in children.chunks_mut(slab_size.max(1)) {
            slab.sort_unstable_by(|a, b| center(self, a).y.total_cmp(&center(self, b).y));
            let run_size = slab.len().div_ceil(s);
            for run in slab.chunks_mut(run_size.max(1)) {
                run.sort_unstable_by(|a, b| center(self, a).z.total_cmp(&center(self, b).z));
                for page in run.chunks(cap) {
                    chunks.push(page.to_vec());
                }
            }
        }
        for page in chunks {
            let mbr = page
                .iter()
                .fold(Aabb::EMPTY, |m, &c| m.union(&self.nodes[c as usize].mbr));
            let parent = self.alloc(Node {
                mbr,
                parent: NO_NODE,
                kind: NodeKind::Inner(page.clone()),
            });
            for &c in &page {
                self.nodes[c as usize].parent = parent;
            }
            parents.push(parent);
        }
        parents
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts an entry (classic Guttman insert with quadratic split).
    pub fn insert(&mut self, id: VertexId, key: Aabb) {
        debug_assert!(
            !self.object_leaf.contains_key(&id),
            "duplicate insert of object {id}; remove it first"
        );
        self.len += 1;
        if self.root == NO_NODE {
            let root = self.alloc(Node {
                mbr: key,
                parent: NO_NODE,
                kind: NodeKind::Leaf(vec![LeafEntry { id, key }]),
            });
            self.root = root;
            self.object_leaf.insert(id, root);
            return;
        }
        let leaf = self.choose_leaf(key);
        match &mut self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => entries.push(LeafEntry { id, key }),
            NodeKind::Inner(_) => unreachable!("choose_leaf returns leaves"),
        }
        self.object_leaf.insert(id, leaf);
        self.grow_mbr_upward(leaf, key);
        if self.node_len(leaf) > self.max_entries {
            self.split(leaf);
        }
    }

    fn node_len(&self, n: u32) -> usize {
        match &self.nodes[n as usize].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Inner(c) => c.len(),
        }
    }

    /// Descends from the root picking the child needing least volume
    /// enlargement (ties: smaller volume).
    fn choose_leaf(&self, key: Aabb) -> u32 {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize].kind {
                NodeKind::Leaf(_) => return cur,
                NodeKind::Inner(children) => {
                    let mut best = children[0];
                    let mut best_growth = f64::INFINITY;
                    let mut best_vol = f64::INFINITY;
                    for &c in children {
                        let mbr = self.nodes[c as usize].mbr;
                        let vol = mbr.volume();
                        let growth = mbr.union(&key).volume() - vol;
                        if growth < best_growth || (growth == best_growth && vol < best_vol) {
                            best = c;
                            best_growth = growth;
                            best_vol = vol;
                        }
                    }
                    cur = best;
                }
            }
        }
    }

    /// Extends ancestors' MBRs to cover `key`.
    fn grow_mbr_upward(&mut self, mut node: u32, key: Aabb) {
        loop {
            let n = &mut self.nodes[node as usize];
            n.mbr = n.mbr.union(&key);
            if n.parent == NO_NODE {
                break;
            }
            node = n.parent;
        }
    }

    /// Recomputes the MBR of `node` and ancestors exactly (after removal
    /// or redistribution).
    fn tighten_mbr_upward(&mut self, mut node: u32) {
        loop {
            let mbr = self.compute_mbr(node);
            let n = &mut self.nodes[node as usize];
            n.mbr = mbr;
            if n.parent == NO_NODE {
                break;
            }
            node = n.parent;
        }
    }

    fn compute_mbr(&self, node: u32) -> Aabb {
        match &self.nodes[node as usize].kind {
            NodeKind::Leaf(entries) => entries.iter().fold(Aabb::EMPTY, |m, e| m.union(&e.key)),
            NodeKind::Inner(children) => children
                .iter()
                .fold(Aabb::EMPTY, |m, &c| m.union(&self.nodes[c as usize].mbr)),
        }
    }

    /// Quadratic split of an over-full node (Guttman). The new sibling is
    /// linked into the parent, splitting recursively; a root split grows
    /// the tree.
    fn split(&mut self, node: u32) {
        let parent = self.nodes[node as usize].parent;
        // Move contents out first so the arena can be borrowed immutably
        // by the partition key function.
        enum Taken {
            Leaf(Vec<LeafEntry>),
            Inner(Vec<u32>),
        }
        let taken = match &mut self.nodes[node as usize].kind {
            NodeKind::Leaf(entries) => Taken::Leaf(std::mem::take(entries)),
            NodeKind::Inner(children) => Taken::Inner(std::mem::take(children)),
        };
        let (kind_a, kind_b) = match taken {
            Taken::Leaf(items) => {
                let (a, b) = quadratic_partition(items, |e| e.key, self.min_entries);
                (NodeKind::Leaf(a), NodeKind::Leaf(b))
            }
            Taken::Inner(items) => {
                let nodes = &self.nodes;
                let (a, b) =
                    quadratic_partition(items, |&c| nodes[c as usize].mbr, self.min_entries);
                (NodeKind::Inner(a), NodeKind::Inner(b))
            }
        };
        self.nodes[node as usize].kind = kind_a;
        let sibling = self.alloc(Node {
            mbr: Aabb::EMPTY,
            parent: NO_NODE,
            kind: kind_b,
        });
        // Fix back pointers of everything that moved into the sibling.
        self.fix_children_links(sibling);
        self.fix_children_links(node);
        self.nodes[node as usize].mbr = self.compute_mbr(node);
        self.nodes[sibling as usize].mbr = self.compute_mbr(sibling);

        if parent == NO_NODE {
            let new_root = self.alloc(Node {
                mbr: self.nodes[node as usize]
                    .mbr
                    .union(&self.nodes[sibling as usize].mbr),
                parent: NO_NODE,
                kind: NodeKind::Inner(vec![node, sibling]),
            });
            self.nodes[node as usize].parent = new_root;
            self.nodes[sibling as usize].parent = new_root;
            self.root = new_root;
        } else {
            self.nodes[sibling as usize].parent = parent;
            match &mut self.nodes[parent as usize].kind {
                NodeKind::Inner(children) => children.push(sibling),
                NodeKind::Leaf(_) => unreachable!("parent of a split node is inner"),
            }
            self.tighten_mbr_upward(parent);
            if self.node_len(parent) > self.max_entries {
                self.split(parent);
            }
        }
    }

    /// Repoints children's `parent` (inner) or `object_leaf` (leaf) links
    /// at `node`.
    fn fix_children_links(&mut self, node: u32) {
        match &self.nodes[node as usize].kind {
            NodeKind::Leaf(entries) => {
                let ids: Vec<VertexId> = entries.iter().map(|e| e.id).collect();
                for id in ids {
                    self.object_leaf.insert(id, node);
                }
            }
            NodeKind::Inner(children) => {
                let children = children.clone();
                for c in children {
                    self.nodes[c as usize].parent = node;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes the entry for `id`; returns its key, or `None` when the
    /// object is not stored. Underflowing leaves are condensed: the leaf
    /// is detached and its surviving entries reinserted.
    pub fn remove(&mut self, id: VertexId) -> Option<Aabb> {
        let leaf = self.object_leaf.remove(&id)?;
        let removed_key;
        let remaining_len;
        match &mut self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => {
                let pos = entries
                    .iter()
                    .position(|e| e.id == id)
                    .expect("object_leaf in sync");
                removed_key = entries.swap_remove(pos).key;
                remaining_len = entries.len();
            }
            NodeKind::Inner(_) => unreachable!("object_leaf maps to leaves"),
        }
        self.len -= 1;

        if leaf == self.root {
            if remaining_len == 0 {
                self.release(leaf);
                self.root = NO_NODE;
            } else {
                self.tighten_mbr_upward(leaf);
            }
            return Some(removed_key);
        }

        if remaining_len < self.min_entries {
            // Condense: detach the leaf and reinsert survivors.
            let survivors = match &mut self.nodes[leaf as usize].kind {
                NodeKind::Leaf(entries) => std::mem::take(entries),
                NodeKind::Inner(_) => unreachable!(),
            };
            self.detach_node(leaf);
            for e in survivors {
                self.object_leaf.remove(&e.id);
                self.len -= 1;
                self.insert(e.id, e.key);
            }
        } else {
            self.tighten_mbr_upward(leaf);
        }
        Some(removed_key)
    }

    /// Unlinks `node` from its parent, releasing it; propagates underflow
    /// upward by dissolving ancestors whose fan-out drops below minimum
    /// and reinserting the leaf entries beneath them.
    fn detach_node(&mut self, node: u32) {
        let parent = self.nodes[node as usize].parent;
        self.release(node);
        if parent == NO_NODE {
            // node was the root.
            self.root = NO_NODE;
            return;
        }
        match &mut self.nodes[parent as usize].kind {
            NodeKind::Inner(children) => {
                let pos = children
                    .iter()
                    .position(|&c| c == node)
                    .expect("child link in sync");
                children.swap_remove(pos);
            }
            NodeKind::Leaf(_) => unreachable!(),
        }
        let parent_len = self.node_len(parent);
        if parent == self.root {
            if parent_len == 1 {
                // Shrink: single child becomes the root.
                let only = match &self.nodes[parent as usize].kind {
                    NodeKind::Inner(children) => children[0],
                    NodeKind::Leaf(_) => unreachable!(),
                };
                self.release(parent);
                self.nodes[only as usize].parent = NO_NODE;
                self.root = only;
            } else if parent_len == 0 {
                self.release(parent);
                self.root = NO_NODE;
            } else {
                self.tighten_mbr_upward(parent);
            }
        } else if parent_len < self.min_entries {
            // Dissolve the parent: reinsert all leaf entries beneath it.
            let mut orphaned = Vec::new();
            self.collect_leaf_entries(parent, &mut orphaned);
            self.detach_node(parent);
            for e in orphaned {
                self.object_leaf.remove(&e.id);
                self.len -= 1;
                self.insert(e.id, e.key);
            }
        } else {
            self.tighten_mbr_upward(parent);
        }
    }

    /// Gathers all leaf entries in the subtree of `node`, releasing
    /// interior nodes as it goes (the caller already owns the subtree).
    fn collect_leaf_entries(&mut self, node: u32, out: &mut Vec<LeafEntry>) {
        match std::mem::replace(
            &mut self.nodes[node as usize].kind,
            NodeKind::Inner(Vec::new()),
        ) {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Inner(children) => {
                for c in children {
                    self.collect_leaf_entries(c, out);
                    self.release(c);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lazy update support (LUR-Tree)
    // ------------------------------------------------------------------

    /// MBR of the leaf currently holding `id`.
    pub fn leaf_mbr(&self, id: VertexId) -> Option<Aabb> {
        let leaf = *self.object_leaf.get(&id)?;
        Some(self.nodes[leaf as usize].mbr)
    }

    /// LUR-Tree fast path: overwrite the key of `id` *without touching
    /// any MBR*, valid only when `new_key` stays inside the holding
    /// leaf's MBR. Returns `false` (doing nothing) otherwise, in which
    /// case the caller must `remove` + `insert`.
    pub fn update_in_place(&mut self, id: VertexId, new_key: Aabb) -> bool {
        let Some(&leaf) = self.object_leaf.get(&id) else {
            return false;
        };
        if !self.nodes[leaf as usize].mbr.contains_box(&new_key) {
            return false;
        }
        match &mut self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => {
                let e = entries
                    .iter_mut()
                    .find(|e| e.id == id)
                    .expect("object_leaf in sync");
                e.key = new_key;
                true
            }
            NodeKind::Inner(_) => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Query
    // ------------------------------------------------------------------

    /// Appends the ids of all entries whose key intersects `q`.
    pub fn query_keys(&self, q: &Aabb, out: &mut Vec<VertexId>) {
        if self.root == NO_NODE {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !q.intersects(&node.mbr) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    out.extend(
                        entries
                            .iter()
                            .filter(|e| q.intersects(&e.key))
                            .map(|e| e.id),
                    );
                }
                NodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// Total heap bytes: node arena + entry vectors + the object→leaf
    /// hash map (the competitors' "R-Tree along with a hash index",
    /// §V-B).
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node>();
        for n in &self.nodes {
            total += match &n.kind {
                NodeKind::Leaf(e) => e.capacity() * std::mem::size_of::<LeafEntry>(),
                NodeKind::Inner(c) => c.capacity() * std::mem::size_of::<u32>(),
            };
        }
        total += self.object_leaf.capacity()
            * (std::mem::size_of::<(VertexId, u32)>() + std::mem::size_of::<u64>() / 8);
        total += self.free.capacity() * std::mem::size_of::<u32>();
        total
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Exhaustively checks structural invariants; panics on violation.
    /// O(tree) — tests only.
    pub fn check_invariants(&self) {
        if self.root == NO_NODE {
            assert_eq!(self.len, 0, "empty tree must have len 0");
            return;
        }
        assert_eq!(self.nodes[self.root as usize].parent, NO_NODE);
        let mut seen_entries = 0usize;
        let mut stack = vec![(self.root, None::<u32>, 0usize)];
        let mut leaf_depths = Vec::new();
        while let Some((ni, parent, depth)) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if let Some(p) = parent {
                assert_eq!(node.parent, p, "parent link of node {ni}");
                assert!(
                    self.nodes[p as usize].mbr.contains_box(&node.mbr),
                    "child mbr escapes parent"
                );
            }
            let exact = self.compute_mbr(ni);
            assert!(
                node.mbr.contains_box(&exact) || exact.is_empty(),
                "stored mbr must cover contents"
            );
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    leaf_depths.push(depth);
                    seen_entries += entries.len();
                    // NOTE: STR bulk loading may leave remainder pages
                    // below the Guttman minimum; deletes condense them
                    // lazily, so only emptiness/overflow are invariant.
                    if ni != self.root {
                        assert!(!entries.is_empty(), "empty non-root leaf");
                    }
                    assert!(entries.len() <= self.max_entries, "leaf overflow");
                    for e in entries {
                        assert_eq!(
                            self.object_leaf.get(&e.id),
                            Some(&ni),
                            "object_leaf out of sync for {}",
                            e.id
                        );
                    }
                }
                NodeKind::Inner(children) => {
                    assert!(children.len() <= self.max_entries, "inner overflow");
                    assert!(!children.is_empty());
                    for &c in children {
                        stack.push((c, Some(ni), depth + 1));
                    }
                }
            }
        }
        assert_eq!(seen_entries, self.len, "entry count");
        assert_eq!(self.object_leaf.len(), self.len, "back-pointer count");
        let first = leaf_depths[0];
        assert!(
            leaf_depths.iter().all(|&d| d == first),
            "leaves at uniform depth"
        );
    }
}

impl Default for RTree {
    fn default() -> Self {
        RTree::new()
    }
}

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then greedily assign by enlargement preference while honouring the
/// minimum fill.
fn quadratic_partition<T: Clone>(
    items: Vec<T>,
    key: impl Fn(&T) -> Aabb,
    min_entries: usize,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    // Pick seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let (ka, kb) = (key(&items[i]), key(&items[j]));
            let dead = ka.union(&kb).volume() - ka.volume() - kb.volume();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![items[seed_a].clone()];
    let mut group_b = vec![items[seed_b].clone()];
    let mut mbr_a = key(&items[seed_a]);
    let mut mbr_b = key(&items[seed_b]);
    let mut rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != seed_a && *i != seed_b)
        .map(|(_, t)| t)
        .collect();

    while let Some(next) = pick_next(&rest, &key, &mbr_a, &mbr_b) {
        let item = rest.swap_remove(next);
        let k = key(&item);
        let remaining = rest.len();
        // Force-assign when a group must take everything left to reach
        // the minimum.
        let must_a = group_a.len() + remaining < min_entries;
        let must_b = group_b.len() + remaining < min_entries;
        let grow_a = mbr_a.union(&k).volume() - mbr_a.volume();
        let grow_b = mbr_b.union(&k).volume() - mbr_b.volume();
        let to_a = if must_a {
            true
        } else if must_b {
            false
        } else if grow_a != grow_b {
            grow_a < grow_b
        } else {
            mbr_a.volume() <= mbr_b.volume()
        };
        if to_a {
            mbr_a = mbr_a.union(&k);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(&k);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

/// Guttman's PickNext: the item with the largest |d₁ − d₂| preference.
fn pick_next<T>(
    rest: &[T],
    key: &impl Fn(&T) -> Aabb,
    mbr_a: &Aabb,
    mbr_b: &Aabb,
) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, item) in rest.iter().enumerate() {
        let k = key(item);
        let d1 = mbr_a.union(&k).volume() - mbr_a.volume();
        let d2 = mbr_b.union(&k).volume() - mbr_b.volume();
        let diff = (d1 - d2).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

/// Convenience: a degenerate box for a point key.
#[inline]
pub fn point_key(p: Point3) -> Aabb {
    Aabb::new(p, p)
}

impl DynamicIndex for RTree {
    fn name(&self) -> &'static str {
        "RTree(bulk-rebuild)"
    }

    /// As a standalone competitor the R-tree uses the best strategy
    /// available to it under full-dataset updates: STR bulk rebuild
    /// (§II-A: "it is often cheaper to rebuild the index from scratch").
    fn on_step(&mut self, positions: &[Point3]) {
        let entries = positions
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                id: i as VertexId,
                key: point_key(*p),
            })
            .collect();
        self.bulk_load(entries);
    }

    fn query(&self, q: &Aabb, _positions: &[Point3], out: &mut Vec<VertexId>) {
        self.query_keys(q, out);
    }

    fn memory_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    fn entries_from(pts: &[Point3]) -> Vec<LeafEntry> {
        pts.iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                id: i as VertexId,
                key: point_key(*p),
            })
            .collect()
    }

    #[test]
    fn bulk_load_queries_match_scan() {
        let pts = random_points(5_000, 21);
        let mut t = RTree::with_fanout(16);
        t.bulk_load(entries_from(&pts));
        t.check_invariants();
        let mut rng = SplitMix64::new(3);
        for _ in 0..20 {
            let q = random_query(&mut rng, 0.1);
            let mut out = Vec::new();
            t.query_keys(&q, &mut out);
            assert_same_ids(out, &scan(&q, &pts), "bulk-loaded rtree");
        }
    }

    #[test]
    fn incremental_inserts_match_scan() {
        let pts = random_points(2_000, 22);
        let mut t = RTree::with_fanout(8);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as VertexId, point_key(*p));
        }
        t.check_invariants();
        assert_eq!(t.len(), 2_000);
        let mut rng = SplitMix64::new(4);
        for _ in 0..20 {
            let q = random_query(&mut rng, 0.12);
            let mut out = Vec::new();
            t.query_keys(&q, &mut out);
            assert_same_ids(out, &scan(&q, &pts), "insert-built rtree");
        }
    }

    #[test]
    fn removals_keep_tree_consistent() {
        let pts = random_points(1_000, 23);
        let mut t = RTree::with_fanout(8);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as VertexId, point_key(*p));
        }
        // Remove every third point.
        let mut alive: Vec<bool> = vec![true; pts.len()];
        for i in (0..pts.len()).step_by(3) {
            assert!(t.remove(i as VertexId).is_some());
            alive[i] = false;
        }
        t.check_invariants();
        assert_eq!(t.len(), alive.iter().filter(|&&a| a).count());
        let q = Aabb::cube(Point3::splat(0.5), 0.3);
        let mut out = Vec::new();
        t.query_keys(&q, &mut out);
        out.sort_unstable();
        let expected: Vec<VertexId> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| alive[*i] && q.contains(**p))
            .map(|(i, _)| i as VertexId)
            .collect();
        assert_eq!(out, expected);
        // Removing a missing id is a no-op.
        assert!(t.remove(0).is_none());
    }

    #[test]
    fn remove_everything_empties_the_tree() {
        let pts = random_points(300, 24);
        let mut t = RTree::with_fanout(6);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as VertexId, point_key(*p));
        }
        for i in 0..pts.len() {
            t.remove(i as VertexId);
            t.check_invariants();
        }
        assert!(t.is_empty());
        // And the tree is reusable.
        t.insert(7, point_key(Point3::splat(0.5)));
        t.check_invariants();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_in_place_only_inside_leaf_mbr() {
        let pts = random_points(500, 25);
        let mut t = RTree::with_fanout(8);
        t.bulk_load(entries_from(&pts));
        let mbr = t.leaf_mbr(0).unwrap();
        // A key inside the leaf MBR updates in place.
        let inside = point_key(mbr.center());
        assert!(t.update_in_place(0, inside));
        t.check_invariants();
        // A key far outside is refused.
        let outside = point_key(Point3::splat(99.0));
        assert!(!t.update_in_place(0, outside));
        // Unknown ids are refused.
        assert!(!t.update_in_place(9_999, inside));
        // Verify the in-place update is visible to queries.
        let mut out = Vec::new();
        t.query_keys(&Aabb::cube(mbr.center(), 1e-4), &mut out);
        assert!(out.contains(&0));
    }

    #[test]
    fn mixed_insert_remove_stress_preserves_scan_equivalence() {
        let mut rng = SplitMix64::new(77);
        let mut t = RTree::with_fanout(8);
        let mut live: std::collections::HashMap<VertexId, Point3> = Default::default();
        let mut next_id: VertexId = 0;
        for round in 0..2_000 {
            if rng.chance(0.6) || live.is_empty() {
                let p = Point3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
                t.insert(next_id, point_key(p));
                live.insert(next_id, p);
                next_id += 1;
            } else {
                let ids: Vec<VertexId> = live.keys().copied().collect();
                let id = ids[rng.index(ids.len())];
                assert!(t.remove(id).is_some(), "round {round}");
                live.remove(&id);
            }
            if round % 250 == 0 {
                t.check_invariants();
                let q = random_query(&mut rng, 0.2);
                let mut out = Vec::new();
                t.query_keys(&q, &mut out);
                out.sort_unstable();
                let mut expected: Vec<VertexId> = live
                    .iter()
                    .filter(|(_, p)| q.contains(**p))
                    .map(|(id, _)| *id)
                    .collect();
                expected.sort_unstable();
                assert_eq!(out, expected, "round {round}");
            }
        }
        t.check_invariants();
    }

    #[test]
    fn box_keys_are_supported() {
        // QU-Trade indexes windows, not points.
        let mut t = RTree::with_fanout(8);
        for i in 0..100u32 {
            let c = Point3::new((i % 10) as f32, (i / 10) as f32, 0.0);
            t.insert(i, Aabb::cube(c, 0.4));
        }
        t.check_invariants();
        let q = Aabb::cube(Point3::new(5.0, 5.0, 0.0), 0.05);
        let mut out = Vec::new();
        t.query_keys(&q, &mut out);
        assert!(
            out.contains(&55),
            "window overlapping the query must be reported"
        );
    }

    #[test]
    fn dynamic_index_impl_rebuilds() {
        let mut pts = random_points(800, 26);
        let mut t = RTree::with_fanout(32);
        t.on_step(&pts);
        jitter_all(&mut pts, 0.2, 1);
        t.on_step(&pts);
        let q = Aabb::cube(Point3::splat(0.5), 0.25);
        let mut out = Vec::new();
        t.query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "rebuilt rtree");
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let mut t = RTree::new();
        t.check_invariants();
        let mut out = Vec::new();
        t.query_keys(&Aabb::cube(Point3::splat(0.0), 1.0), &mut out);
        assert!(out.is_empty());
        t.bulk_load(Vec::new());
        t.check_invariants();
        t.insert(0, point_key(Point3::splat(0.1)));
        t.check_invariants();
        assert_eq!(t.len(), 1);
    }
}
