//! The stale uniform grid used by OCTOPUS-CON (§IV-F).
//!
//! "OCTOPUS-CON uses a simple three dimensional uniform grid as spatial
//! index. Before the simulation, the index is built by mapping each
//! vertex of the mesh to the grid cell enclosing the vertex. To find the
//! closest vertex OCTOPUS-CON finds the cell that encloses the center of
//! the query region and then uses any of the mesh vertices assigned to
//! this cell … If no vertex exists the neighboring cells are recursively
//! checked until a vertex is found."
//!
//! The grid is **built once and never updated** — it goes stale as the
//! simulation moves vertices, which is tolerable because it only seeds
//! the directed walk; correctness comes from the walk + crawl.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// A uniform `r × r × r` grid of vertex buckets (CSR layout).
#[derive(Clone, Debug)]
pub struct UniformGrid {
    res: usize,
    bounds: Aabb,
    /// CSR: bucket `b` holds `ids[offsets[b]..offsets[b+1]]`.
    offsets: Vec<u32>,
    ids: Vec<VertexId>,
}

impl UniformGrid {
    /// Builds the grid over `bounds` with `res³` cells from the given
    /// positions. Positions outside `bounds` are clamped into border
    /// cells.
    pub fn build(positions: &[Point3], bounds: &Aabb, res: usize) -> UniformGrid {
        assert!(res >= 1, "grid resolution must be at least 1");
        let cells = res * res * res;
        let mut counts = vec![0u32; cells + 1];
        let cell_of = |p: &Point3| -> usize { Self::cell_index(p, bounds, res) };
        for p in positions {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..cells {
            counts[i + 1] += counts[i];
        }
        let mut ids = vec![0 as VertexId; positions.len()];
        let mut cursor = counts.clone();
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(p);
            ids[cursor[c] as usize] = i as VertexId;
            cursor[c] += 1;
        }
        UniformGrid {
            res,
            bounds: *bounds,
            offsets: counts,
            ids,
        }
    }

    /// Grid resolution per axis.
    #[inline]
    pub fn resolution(&self) -> usize {
        self.res
    }

    /// Total number of grid cells (`res³`) — the paper's Fig. 9(c/d)
    /// x-axis.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.res * self.res * self.res
    }

    fn cell_index(p: &Point3, bounds: &Aabb, res: usize) -> usize {
        let e = bounds.extent();
        let mut idx = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t = ((p[axis] - bounds.min[axis]) / len * res as f32).floor();
            idx[axis] = (t.max(0.0) as usize).min(res - 1);
        }
        idx[0] + res * (idx[1] + res * idx[2])
    }

    fn bucket(&self, cell: usize) -> &[VertexId] {
        let lo = self.offsets[cell] as usize;
        let hi = self.offsets[cell + 1] as usize;
        &self.ids[lo..hi]
    }

    /// Any vertex whose *build-time* position fell in the cell containing
    /// `target`; when that cell is empty, rings of neighbouring cells are
    /// searched outward until a non-empty cell is found.
    ///
    /// Returns `None` only when the whole grid is empty.
    pub fn stale_start_vertex(&self, target: Point3) -> Option<VertexId> {
        if self.ids.is_empty() {
            return None;
        }
        let center = Self::cell_index(&target, &self.bounds, self.res);
        let r = self.res;
        let (cx, cy, cz) = (center % r, (center / r) % r, center / (r * r));
        for radius in 0..r {
            // Scan the cube shell at Chebyshev distance `radius`.
            let lo = |c: usize| c.saturating_sub(radius);
            let hi = |c: usize| (c + radius).min(r - 1);
            for z in lo(cz)..=hi(cz) {
                for y in lo(cy)..=hi(cy) {
                    for x in lo(cx)..=hi(cx) {
                        // Only the shell, not the interior (already seen).
                        let on_shell = x == lo(cx)
                            || x == hi(cx)
                            || y == lo(cy)
                            || y == hi(cy)
                            || z == lo(cz)
                            || z == hi(cz);
                        if radius > 0 && !on_shell {
                            continue;
                        }
                        let b = self.bucket(x + r * (y + r * z));
                        if let Some(&id) = b.first() {
                            return Some(id);
                        }
                    }
                }
            }
        }
        None
    }
}

impl DynamicIndex for UniformGrid {
    fn name(&self) -> &'static str {
        "UniformGrid(stale)"
    }

    /// Never updated — the defining property of the stale grid.
    fn on_step(&mut self, _positions: &[Point3]) {}

    /// Queries verify candidates against live positions: the grid buckets
    /// are stale, so a candidate's *current* position decides membership.
    /// NOTE: stale buckets make this a *heuristic* pre-filter, not an
    /// exact index — vertices that moved across cells since build time
    /// can be missed. OCTOPUS-CON therefore never uses `query`; it uses
    /// [`UniformGrid::stale_start_vertex`]. The implementation exists for
    /// the grid-staleness ablation.
    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>) {
        let r = self.res;
        let e = self.bounds.extent();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let len = e[axis].max(f32::MIN_POSITIVE);
            let t0 = ((q.min[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            let t1 = ((q.max[axis] - self.bounds.min[axis]) / len * r as f32).floor();
            lo[axis] = (t0.max(0.0) as usize).min(r - 1);
            hi[axis] = (t1.max(0.0) as usize).min(r - 1);
        }
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    for &id in self.bucket(x + r * (y + r * z)) {
                        if q.contains(positions[id as usize]) {
                            out.push(id);
                        }
                    }
                }
            }
        }
    }

    /// Fig. 9(d)'s "memory overhead of grid hash".
    fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.ids.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn start_vertex_comes_from_the_right_cell() {
        let pts = vec![
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(0.9, 0.9, 0.9),
            Point3::new(0.5, 0.5, 0.5),
        ];
        let g = UniformGrid::build(&pts, &unit_bounds(), 4);
        assert_eq!(g.stale_start_vertex(Point3::new(0.12, 0.1, 0.08)), Some(0));
        assert_eq!(g.stale_start_vertex(Point3::new(0.88, 0.9, 0.93)), Some(1));
    }

    #[test]
    fn ring_search_reaches_distant_cells() {
        // One point in a corner; target in the opposite corner.
        let pts = vec![Point3::new(0.05, 0.05, 0.05)];
        let g = UniformGrid::build(&pts, &unit_bounds(), 8);
        assert_eq!(g.stale_start_vertex(Point3::new(0.95, 0.95, 0.95)), Some(0));
    }

    #[test]
    fn empty_grid_returns_none() {
        let g = UniformGrid::build(&[], &unit_bounds(), 4);
        assert_eq!(g.stale_start_vertex(Point3::splat(0.5)), None);
    }

    #[test]
    fn out_of_bounds_points_are_clamped_not_lost() {
        let pts = vec![Point3::new(-5.0, 0.5, 0.5), Point3::new(5.0, 0.5, 0.5)];
        let g = UniformGrid::build(&pts, &unit_bounds(), 4);
        assert_eq!(g.num_cells(), 64);
        assert!(g.stale_start_vertex(Point3::new(0.0, 0.5, 0.5)).is_some());
        // Both points are in the grid somewhere.
        let mut out = Vec::new();
        let everywhere = Aabb::new(Point3::splat(-10.0), Point3::splat(10.0));
        g.query(&everywhere, &pts, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fresh_grid_query_matches_scan() {
        // Immediately after build (no movement) the grid is exact.
        let pts = random_points(400, 9);
        let g = UniformGrid::build(&pts, &unit_bounds(), 5);
        let q = Aabb::cube(Point3::splat(0.4), 0.22);
        let mut out = Vec::new();
        g.query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "fresh grid");
    }

    #[test]
    fn memory_grows_with_resolution() {
        let pts = random_points(100, 4);
        let small = UniformGrid::build(&pts, &unit_bounds(), 2);
        let large = UniformGrid::build(&pts, &unit_bounds(), 18);
        assert!(
            large.memory_bytes() > small.memory_bytes(),
            "Fig. 9(d) trend"
        );
    }

    #[test]
    fn single_cell_grid_works() {
        let pts = random_points(10, 5);
        let g = UniformGrid::build(&pts, &unit_bounds(), 1);
        assert!(g.stale_start_vertex(Point3::splat(0.5)).is_some());
    }
}
