//! The linear-scan baseline.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Brute-force range execution: test every vertex against the query.
///
/// "While the linear scan has no memory overhead, query execution time
/// will not scale as it directly depends on the dataset size" (§II). It
/// is nonetheless the strongest competitor in the paper's massive-update
/// regime, and the denominator of every speedup figure.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearScan;

impl LinearScan {
    /// Creates the (stateless) scan "index".
    pub fn new() -> LinearScan {
        LinearScan
    }
}

impl DynamicIndex for LinearScan {
    fn name(&self) -> &'static str {
        "LinearScan"
    }

    fn on_step(&mut self, _positions: &[Point3]) {}

    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>) {
        for (i, p) in positions.iter().enumerate() {
            if q.contains(*p) {
                out.push(i as VertexId);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn scan_finds_exactly_contained_points() {
        let pts = random_points(500, 1);
        let q = Aabb::cube(Point3::splat(0.5), 0.2);
        let mut out = Vec::new();
        LinearScan::new().query(&q, &pts, &mut out);
        assert_same_ids(out, &scan(&q, &pts), "linear scan vs ground truth");
    }

    #[test]
    fn scan_has_no_memory_and_no_maintenance() {
        let mut s = LinearScan::new();
        let mut pts = random_points(100, 2);
        s.on_step(&pts);
        jitter_all(&mut pts, 0.1, 3);
        s.on_step(&pts);
        assert_eq!(s.memory_bytes(), 0);
    }

    #[test]
    fn query_appends_without_clearing() {
        let pts = vec![Point3::splat(0.5)];
        let q = Aabb::cube(Point3::splat(0.5), 0.1);
        let mut out = vec![99];
        LinearScan::new().query(&q, &pts, &mut out);
        assert_eq!(out, vec![99, 0]);
    }
}
