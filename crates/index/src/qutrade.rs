//! QU-Trade: workload-aware grace-window indexing (Tzoumas et al. [24]).
//!
//! "Instead of indexing the moving objects, QU-Trade indexes a grace
//! window within which the objects are expected to move. The bigger the
//! grace window is, the fewer updates need to be made but also the more
//! irrelevant objects are retrieved by a query. By growing and shrinking
//! the grace window this technique provides a good, tunable compromise
//! between update and query intensive workloads" (§II-A).
//!
//! Each vertex is indexed by a cube of half-extent `w` centred on its
//! position at insertion time. A per-step update touches the R-tree only
//! when the vertex exits its window. Queries fetch candidate windows and
//! filter by live positions. Following the paper's tuning (§V-A), the
//! controller adapts `w` so that "fewer than 1 % of the location updates
//! trigger the costly R-Tree maintenance process".

use crate::rtree::{LeafEntry, RTree};
use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Target fraction of updates allowed to trigger structural maintenance
/// (the paper tunes for < 1 %).
pub const TARGET_HARD_UPDATE_RATE: f64 = 0.01;

/// QU-Trade: R-tree of adaptive grace windows + live-position filter.
#[derive(Clone, Debug)]
pub struct QuTrade {
    tree: RTree,
    /// Half-extent used for newly (re)inserted windows.
    window: f32,
    /// Centre of each object's current window (to detect escapes).
    anchors: Vec<Point3>,
    /// Half-extent of each object's *stored* window. The controller may
    /// change [`QuTrade::window`] between reinsertion epochs, so the
    /// escape test must use the size the window was actually built with —
    /// otherwise a grown `window` would mark escaped objects as inside
    /// and queries would miss them.
    anchor_half: Vec<f32>,
    lazy_updates: u64,
    hard_updates: u64,
    initialized: bool,
}

impl QuTrade {
    /// Creates a QU-Trade index with the paper's fanout and an initial
    /// window guess that the controller adapts.
    pub fn new(initial_window: f32) -> QuTrade {
        QuTrade::with_fanout(crate::rtree::DEFAULT_FANOUT, initial_window)
    }

    /// Custom fanout variant.
    pub fn with_fanout(fanout: usize, initial_window: f32) -> QuTrade {
        assert!(initial_window > 0.0, "window must be positive");
        QuTrade {
            tree: RTree::with_fanout(fanout),
            window: initial_window,
            anchors: Vec::new(),
            anchor_half: Vec::new(),
            lazy_updates: 0,
            hard_updates: 0,
            initialized: false,
        }
    }

    /// Bulk-builds windows around the given positions.
    pub fn build(&mut self, positions: &[Point3]) {
        self.anchors = positions.to_vec();
        self.anchor_half = vec![self.window; positions.len()];
        let w = self.window;
        let entries = positions
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                id: i as VertexId,
                key: Aabb::cube(*p, w),
            })
            .collect();
        self.tree.bulk_load(entries);
        self.initialized = true;
    }

    /// Current grace-window half-extent.
    pub fn window(&self) -> f32 {
        self.window
    }

    /// Updates that stayed within their window.
    pub fn lazy_update_count(&self) -> u64 {
        self.lazy_updates
    }

    /// Updates that escaped and paid delete + reinsert.
    pub fn hard_update_count(&self) -> u64 {
        self.hard_updates
    }

    /// The underlying R-tree (tests).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Grow/shrink controller: called once per step with that step's
    /// escape rate. Escaping more than the target grows the window
    /// aggressively (updates are the expensive side); escaping much less
    /// shrinks it gently to claw back query precision.
    fn adapt_window(&mut self, hard_rate: f64) {
        if hard_rate > TARGET_HARD_UPDATE_RATE {
            self.window *= 1.5;
        } else if hard_rate < TARGET_HARD_UPDATE_RATE / 4.0 {
            self.window *= 0.95;
        }
    }
}

impl DynamicIndex for QuTrade {
    fn name(&self) -> &'static str {
        "QU-Trade"
    }

    fn on_step(&mut self, positions: &[Point3]) {
        if !self.initialized || self.anchors.len() != positions.len() {
            self.build(positions);
            return;
        }
        let mut hard_this_step = 0u64;
        for (i, p) in positions.iter().enumerate() {
            let id = i as VertexId;
            let anchor = self.anchors[i];
            let stored_w = self.anchor_half[i];
            let inside = (p.x - anchor.x).abs() <= stored_w
                && (p.y - anchor.y).abs() <= stored_w
                && (p.z - anchor.z).abs() <= stored_w;
            if inside {
                self.lazy_updates += 1;
            } else {
                hard_this_step += 1;
                self.tree.remove(id);
                self.tree.insert(id, Aabb::cube(*p, self.window));
                self.anchors[i] = *p;
                self.anchor_half[i] = self.window;
            }
        }
        self.hard_updates += hard_this_step;
        let rate = hard_this_step as f64 / positions.len().max(1) as f64;
        self.adapt_window(rate);
    }

    /// Candidate windows intersecting `q`, filtered by live positions —
    /// the grace window guarantees any object inside `q` has a window
    /// overlapping `q`, so the filter is sound and complete.
    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>) {
        let before = out.len();
        self.tree.query_keys(q, out);
        let mut write = before;
        for read in before..out.len() {
            let id = out[read];
            if q.contains(positions[id as usize]) {
                out[write] = id;
                write += 1;
            }
        }
        out.truncate(write);
    }

    fn memory_bytes(&self) -> usize {
        self.tree.heap_bytes()
            + self.anchors.capacity() * std::mem::size_of::<Point3>()
            + self.anchor_half.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    #[test]
    fn exact_results_despite_stale_windows() {
        let mut pts = random_points(1_500, 41);
        let mut t = QuTrade::with_fanout(16, 0.02);
        t.on_step(&pts);
        let mut rng = SplitMix64::new(10);
        for step in 0..8 {
            jitter_all(&mut pts, 0.015, 500 + step);
            t.on_step(&pts);
            t.tree().check_invariants();
            for qi in 0..8 {
                let q = random_query(&mut rng, 0.1);
                let mut out = Vec::new();
                t.query(&q, &pts, &mut out);
                assert_same_ids(out, &scan(&q, &pts), &format!("step {step} q{qi}"));
            }
        }
    }

    #[test]
    fn window_grows_until_escape_rate_is_low() {
        let mut pts = random_points(1_000, 42);
        // Start with a window far smaller than the per-step motion.
        let mut t = QuTrade::with_fanout(16, 0.001);
        t.on_step(&pts);
        let w0 = t.window();
        for step in 0..25 {
            jitter_all(&mut pts, 0.02, 700 + step);
            t.on_step(&pts);
        }
        assert!(
            t.window() > w0,
            "controller must grow the window: {} -> {}",
            w0,
            t.window()
        );
        // After adaptation most updates must be lazy (the <1% tuning).
        let mut lazy_before = t.lazy_update_count();
        let mut hard_before = t.hard_update_count();
        let mut last_rates = Vec::new();
        for step in 0..5 {
            jitter_all(&mut pts, 0.02, 900 + step);
            t.on_step(&pts);
            let hard = t.hard_update_count() - hard_before;
            let lazy = t.lazy_update_count() - lazy_before;
            last_rates.push(hard as f64 / (hard + lazy).max(1) as f64);
            hard_before = t.hard_update_count();
            lazy_before = t.lazy_update_count();
        }
        let avg = last_rates.iter().sum::<f64>() / last_rates.len() as f64;
        assert!(
            avg < 0.15,
            "escape rate should be low after adaptation, got {avg}"
        );
    }

    #[test]
    fn query_filters_false_positives() {
        // A big window around a point outside the query must not leak in.
        let pts = vec![Point3::new(0.5, 0.5, 0.5), Point3::new(0.9, 0.9, 0.9)];
        let mut t = QuTrade::with_fanout(8, 0.5);
        t.on_step(&pts);
        let q = Aabb::cube(Point3::splat(0.5), 0.05);
        let mut out = Vec::new();
        t.query(&q, &pts, &mut out);
        assert_eq!(
            out,
            vec![0],
            "window of point 1 overlaps q but the point is outside"
        );
    }

    #[test]
    fn rebuilds_when_population_changes() {
        let pts = random_points(100, 43);
        let mut t = QuTrade::new(0.01);
        t.on_step(&pts);
        let bigger = random_points(150, 44);
        t.on_step(&bigger);
        assert_eq!(t.tree().len(), 150);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        QuTrade::new(0.0);
    }
}
