//! Throwaway bucket PR octree, rebuilt from scratch at every time step.
//!
//! This is the paper's "lightweight throw-away spatial index [8]"
//! competitor: since almost every vertex moves at every step, rebuilding
//! beats updating. "The Octree implementation uses a bucket strategy,
//! where a node is split into eight children if it contains more than
//! 10,000 vertices" (§V-A) — the same default is used here, and the
//! bench harness sweeps it like the paper's parameter sweep.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Default bucket capacity (paper §V-A).
pub const DEFAULT_BUCKET_CAPACITY: usize = 10_000;

/// Safety cap: with heavily duplicated points a region may never shrink
/// below the bucket capacity; beyond this depth nodes stay leaves.
const MAX_DEPTH: u32 = 24;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Index of the first of 8 contiguous children, or `u32::MAX` for a
    /// leaf.
    first_child: u32,
    /// Leaf payload range in `entries`.
    start: u32,
    len: u32,
}

/// A bucketed point-region octree.
#[derive(Clone, Debug)]
pub struct Octree {
    bucket_capacity: usize,
    nodes: Vec<Node>,
    /// Reordered `(id, position)` payload; leaves own contiguous slices.
    entries: Vec<(VertexId, Point3)>,
    /// Number of rebuilds performed (one per `on_step`).
    rebuilds: usize,
}

impl Octree {
    /// Creates an empty octree with the paper's bucket capacity.
    pub fn new() -> Octree {
        Octree::with_bucket_capacity(DEFAULT_BUCKET_CAPACITY)
    }

    /// Creates an empty octree with a custom bucket capacity (used by the
    /// tuning ablation).
    pub fn with_bucket_capacity(bucket_capacity: usize) -> Octree {
        assert!(bucket_capacity >= 1);
        Octree {
            bucket_capacity,
            nodes: Vec::new(),
            entries: Vec::new(),
            rebuilds: 0,
        }
    }

    /// Number of from-scratch rebuilds so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rebuilds the tree over the given positions.
    pub fn rebuild(&mut self, positions: &[Point3]) {
        self.rebuilds += 1;
        self.nodes.clear();
        self.entries.clear();
        self.entries.reserve(positions.len());
        if positions.is_empty() {
            return;
        }
        let bbox = Aabb::from_points(positions.iter().copied());
        let mut scratch: Vec<(VertexId, Point3)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as VertexId, *p))
            .collect();
        self.nodes.push(Node {
            bbox,
            first_child: u32::MAX,
            start: 0,
            len: 0,
        });
        self.build_node(0, &mut scratch, 0);
    }

    /// Recursively builds node `node`; `pending` holds its points, which
    /// are either stored (leaf) or partitioned into eight octants.
    fn build_node(&mut self, node: usize, pending: &mut Vec<(VertexId, Point3)>, depth: u32) {
        if pending.len() <= self.bucket_capacity || depth >= MAX_DEPTH {
            let start = self.entries.len() as u32;
            self.entries.append(pending);
            let n = &mut self.nodes[node];
            n.start = start;
            n.len = self.entries.len() as u32 - start;
            return;
        }
        let bbox = self.nodes[node].bbox;
        let c = bbox.center();
        let mut parts: [Vec<(VertexId, Point3)>; 8] = Default::default();
        for &(id, p) in pending.iter() {
            let octant = usize::from(p.x > c.x)
                | (usize::from(p.y > c.y) << 1)
                | (usize::from(p.z > c.z) << 2);
            parts[octant].push((id, p));
        }
        pending.clear();
        pending.shrink_to_fit();
        let first_child = self.nodes.len() as u32;
        self.nodes[node].first_child = first_child;
        for octant in 0..8 {
            let child_box = octant_box(&bbox, c, octant);
            self.nodes.push(Node {
                bbox: child_box,
                first_child: u32::MAX,
                start: 0,
                len: 0,
            });
        }
        for (octant, part) in parts.iter_mut().enumerate() {
            self.build_node(first_child as usize + octant, part, depth + 1);
        }
    }

    fn query_into(&self, q: &Aabb, out: &mut Vec<VertexId>) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            if !q.intersects(&node.bbox) {
                continue;
            }
            if node.first_child == u32::MAX {
                let slice = &self.entries[node.start as usize..(node.start + node.len) as usize];
                if q.contains_box(&node.bbox) {
                    // Node fully covered: no per-point test needed.
                    out.extend(slice.iter().map(|&(id, _)| id));
                } else {
                    out.extend(
                        slice
                            .iter()
                            .filter(|(_, p)| q.contains(*p))
                            .map(|&(id, _)| id),
                    );
                }
            } else {
                for c in 0..8usize {
                    stack.push(node.first_child as usize + c);
                }
            }
        }
    }
}

impl Default for Octree {
    fn default() -> Self {
        Octree::new()
    }
}

/// The `octant`-th child box of `bbox` split at `c`.
fn octant_box(bbox: &Aabb, c: Point3, octant: usize) -> Aabb {
    let min = Point3::new(
        if octant & 1 == 0 { bbox.min.x } else { c.x },
        if octant & 2 == 0 { bbox.min.y } else { c.y },
        if octant & 4 == 0 { bbox.min.z } else { c.z },
    );
    let max = Point3::new(
        if octant & 1 == 0 { c.x } else { bbox.max.x },
        if octant & 2 == 0 { c.y } else { bbox.max.y },
        if octant & 4 == 0 { c.z } else { bbox.max.z },
    );
    Aabb::new(min, max)
}

impl DynamicIndex for Octree {
    fn name(&self) -> &'static str {
        "Octree(rebuild)"
    }

    /// Throwaway strategy: discard and rebuild.
    fn on_step(&mut self, positions: &[Point3]) {
        self.rebuild(positions);
    }

    fn query(&self, q: &Aabb, _positions: &[Point3], out: &mut Vec<VertexId>) {
        self.query_into(q, out);
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.entries.capacity() * std::mem::size_of::<(VertexId, Point3)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    #[test]
    fn small_set_stays_a_single_leaf() {
        let pts = random_points(100, 1);
        let mut t = Octree::new();
        t.on_step(&pts);
        assert_eq!(t.node_count(), 1, "100 ≤ bucket capacity 10000");
    }

    #[test]
    fn splitting_happens_beyond_bucket_capacity() {
        let pts = random_points(300, 2);
        let mut t = Octree::with_bucket_capacity(32);
        t.on_step(&pts);
        assert!(t.node_count() > 1);
    }

    #[test]
    fn query_matches_scan_across_steps_and_motion() {
        let mut pts = random_points(2_000, 3);
        let mut t = Octree::with_bucket_capacity(64);
        let mut rng = SplitMix64::new(99);
        for step in 0..5 {
            jitter_all(&mut pts, 0.05, 1000 + step);
            t.on_step(&pts);
            for qi in 0..10 {
                let q = random_query(&mut rng, 0.15);
                let mut out = Vec::new();
                t.query(&q, &pts, &mut out);
                assert_same_ids(out, &scan(&q, &pts), &format!("step {step} query {qi}"));
            }
        }
        assert_eq!(t.rebuild_count(), 5);
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let pts = vec![Point3::splat(0.5); 500];
        let mut t = Octree::with_bucket_capacity(8);
        t.on_step(&pts);
        let mut out = Vec::new();
        t.query(&Aabb::cube(Point3::splat(0.5), 0.01), &pts, &mut out);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut t = Octree::new();
        t.on_step(&[]);
        let mut out = Vec::new();
        t.query(&Aabb::cube(Point3::splat(0.5), 1.0), &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(t.memory_bytes(), 0);
    }

    #[test]
    fn covered_leaf_fast_path_agrees_with_filtering() {
        let pts = random_points(5_000, 7);
        let mut t = Octree::with_bucket_capacity(128);
        t.on_step(&pts);
        // Query covering everything exercises the contains_box fast path.
        let q = Aabb::new(Point3::splat(-1.0), Point3::splat(2.0));
        let mut out = Vec::new();
        t.query(&q, &pts, &mut out);
        assert_eq!(out.len(), 5_000);
    }

    #[test]
    fn memory_reported_after_build() {
        let pts = random_points(1_000, 8);
        let mut t = Octree::with_bucket_capacity(64);
        t.on_step(&pts);
        assert!(t.memory_bytes() >= 1_000 * std::mem::size_of::<(VertexId, Point3)>());
    }
}
