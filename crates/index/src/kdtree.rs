//! Throwaway median-split k-d tree, rebuilt at every time step.
//!
//! The second lightweight rebuild-from-scratch option the paper cites
//! (Bentley [4], §II-A). Compared to the octree it adapts to skewed
//! point distributions (median splits) at a slightly higher build cost.

use crate::DynamicIndex;
use octopus_geom::{Aabb, Point3, VertexId};

/// Entries per leaf before splitting stops.
pub const DEFAULT_LEAF_CAPACITY: usize = 64;

#[derive(Clone, Debug)]
enum Node {
    Inner {
        axis: u8,
        split: f32,
        /// Children indices in the node arena.
        left: u32,
        right: u32,
    },
    Leaf {
        /// Payload range in `entries`.
        start: u32,
        len: u32,
    },
}

/// A bulk-built k-d tree over vertex positions.
#[derive(Clone, Debug)]
pub struct KdTree {
    leaf_capacity: usize,
    nodes: Vec<Node>,
    entries: Vec<(VertexId, Point3)>,
    rebuilds: usize,
}

impl KdTree {
    /// Creates an empty tree with the default leaf capacity.
    pub fn new() -> KdTree {
        KdTree::with_leaf_capacity(DEFAULT_LEAF_CAPACITY)
    }

    /// Creates an empty tree with a custom leaf capacity.
    pub fn with_leaf_capacity(leaf_capacity: usize) -> KdTree {
        assert!(leaf_capacity >= 1);
        KdTree {
            leaf_capacity,
            nodes: Vec::new(),
            entries: Vec::new(),
            rebuilds: 0,
        }
    }

    /// Number of from-scratch rebuilds so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Rebuilds the tree over the given positions.
    pub fn rebuild(&mut self, positions: &[Point3]) {
        self.rebuilds += 1;
        self.nodes.clear();
        self.entries = positions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as VertexId, *p))
            .collect();
        if self.entries.is_empty() {
            return;
        }
        // Build over the whole slice; nodes reference ranges after the
        // recursive in-place partitioning.
        let n = self.entries.len();
        let mut entries = std::mem::take(&mut self.entries);
        self.build_range(&mut entries, 0, n, 0);
        self.entries = entries;
    }

    /// Builds a subtree for `entries[lo..hi]`, returns its node index.
    fn build_range(
        &mut self,
        entries: &mut [(VertexId, Point3)],
        lo: usize,
        hi: usize,
        depth: u32,
    ) -> u32 {
        let len = hi - lo;
        let my_index = self.nodes.len() as u32;
        if len <= self.leaf_capacity || depth >= 48 {
            self.nodes.push(Node::Leaf {
                start: lo as u32,
                len: len as u32,
            });
            return my_index;
        }
        // Split the widest axis at the median for balanced depth.
        let bbox = Aabb::from_points(entries[lo..hi].iter().map(|&(_, p)| p));
        let e = bbox.extent();
        let axis = if e.x >= e.y && e.x >= e.z {
            0u8
        } else if e.y >= e.z {
            1
        } else {
            2
        };
        let mid = lo + len / 2;
        entries[lo..hi].select_nth_unstable_by(len / 2, |a, b| {
            a.1[axis as usize].total_cmp(&b.1[axis as usize])
        });
        let split = entries[mid].1[axis as usize];
        self.nodes.push(Node::Leaf { start: 0, len: 0 }); // placeholder
        let left = self.build_range(entries, lo, mid, depth + 1);
        let right = self.build_range(entries, mid, hi, depth + 1);
        self.nodes[my_index as usize] = Node::Inner {
            axis,
            split,
            left,
            right,
        };
        my_index
    }

    fn query_into(&self, q: &Aabb, out: &mut Vec<VertexId>) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            match &self.nodes[ni as usize] {
                Node::Leaf { start, len } => {
                    let slice = &self.entries[*start as usize..(*start + *len) as usize];
                    out.extend(
                        slice
                            .iter()
                            .filter(|(_, p)| q.contains(*p))
                            .map(|&(id, _)| id),
                    );
                }
                Node::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let a = *axis as usize;
                    // Points with coordinate < split went left; the median
                    // itself went right, so use ≤ / ≥ guards.
                    if q.min[a] <= *split {
                        stack.push(*left);
                    }
                    if q.max[a] >= *split {
                        stack.push(*right);
                    }
                }
            }
        }
    }
}

impl Default for KdTree {
    fn default() -> Self {
        KdTree::new()
    }
}

impl DynamicIndex for KdTree {
    fn name(&self) -> &'static str {
        "KdTree(rebuild)"
    }

    fn on_step(&mut self, positions: &[Point3]) {
        self.rebuild(positions);
    }

    fn query(&self, q: &Aabb, _positions: &[Point3], out: &mut Vec<VertexId>) {
        self.query_into(q, out);
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.entries.capacity() * std::mem::size_of::<(VertexId, Point3)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use octopus_geom::rng::SplitMix64;

    #[test]
    fn query_matches_scan_across_steps_and_motion() {
        let mut pts = random_points(3_000, 11);
        let mut t = KdTree::with_leaf_capacity(16);
        let mut rng = SplitMix64::new(5);
        for step in 0..5 {
            jitter_all(&mut pts, 0.04, 2000 + step);
            t.on_step(&pts);
            for qi in 0..10 {
                let q = random_query(&mut rng, 0.12);
                let mut out = Vec::new();
                t.query(&q, &pts, &mut out);
                assert_same_ids(out, &scan(&q, &pts), &format!("step {step} query {qi}"));
            }
        }
        assert_eq!(t.rebuild_count(), 5);
    }

    #[test]
    fn boundary_points_on_split_plane_are_found() {
        // Many points sharing one coordinate stress the ≤ / ≥ descent.
        let pts: Vec<Point3> = (0..200)
            .map(|i| Point3::new(0.5, (i as f32) / 200.0, ((i * 7) % 200) as f32 / 200.0))
            .collect();
        let mut t = KdTree::with_leaf_capacity(8);
        t.on_step(&pts);
        let q = Aabb::new(Point3::new(0.5, 0.0, 0.0), Point3::new(0.5, 1.0, 1.0));
        let mut out = Vec::new();
        t.query(&q, &pts, &mut out);
        assert_eq!(out.len(), 200, "all points lie exactly on the query plane");
    }

    #[test]
    fn duplicates_do_not_break_build() {
        let pts = vec![Point3::splat(0.25); 1_000];
        let mut t = KdTree::with_leaf_capacity(16);
        t.on_step(&pts);
        let mut out = Vec::new();
        t.query(&Aabb::cube(Point3::splat(0.25), 0.01), &pts, &mut out);
        assert_eq!(out.len(), 1_000);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut t = KdTree::new();
        t.on_step(&[]);
        let mut out = Vec::new();
        t.query(&Aabb::cube(Point3::splat(0.5), 0.5), &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point() {
        let pts = vec![Point3::splat(0.7)];
        let mut t = KdTree::new();
        t.on_step(&pts);
        let mut out = Vec::new();
        t.query(&Aabb::cube(Point3::splat(0.7), 0.05), &pts, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        t.query(&Aabb::cube(Point3::splat(0.2), 0.05), &pts, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn memory_accounting_nonzero() {
        let pts = random_points(512, 3);
        let mut t = KdTree::new();
        t.on_step(&pts);
        assert!(t.memory_bytes() > 0);
    }
}
