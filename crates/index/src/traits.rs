//! The common contract for all competitor indexes.

use octopus_geom::{Aabb, Point3, VertexId};

/// A spatial index over the mesh's vertex positions that survives
/// per-time-step position rewrites.
///
/// The monitoring loop drives implementations as:
///
/// ```text
/// loop over time steps {
///     simulation overwrites positions;        // black box
///     index.on_step(&positions);              // maintenance cost
///     for q in monitoring queries {
///         index.query(&q, &positions, &mut out);  // query cost
///     }
/// }
/// ```
///
/// `on_step` and `query` are deliberately separate so the harness can
/// attribute time the way the paper does (e.g. "99.5 % of the Octree's
/// response time is spent rebuilding", §V-B).
pub trait DynamicIndex {
    /// Short display name used in result tables.
    fn name(&self) -> &'static str;

    /// Absorbs the latest in-place position update. Depending on the
    /// strategy this rebuilds from scratch (throwaway indexes), applies
    /// lazy/grace-window updates (LUR-Tree, QU-Trade), or does nothing
    /// (linear scan, stale grid).
    fn on_step(&mut self, positions: &[Point3]);

    /// Executes a range query, appending the ids of all vertices whose
    /// *current* position (per the latest `on_step`) lies in `q` to
    /// `out`. `positions` is the live position array; filter-based
    /// indexes use it to discard false positives. `out` is not cleared.
    fn query(&self, q: &Aabb, positions: &[Point3], out: &mut Vec<VertexId>);

    /// Bytes of heap memory held by index structures (the paper's
    /// Fig. 6(b) memory-overhead metric). Excludes the position array
    /// itself, which belongs to the dataset.
    fn memory_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: the bench harness stores
    /// `Box<dyn DynamicIndex>` competitors.
    #[test]
    fn trait_is_object_safe() {
        struct Dummy;
        impl DynamicIndex for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn on_step(&mut self, _positions: &[Point3]) {}
            fn query(&self, _q: &Aabb, _positions: &[Point3], _out: &mut Vec<VertexId>) {}
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        let b: Box<dyn DynamicIndex> = Box::new(Dummy);
        assert_eq!(b.name(), "dummy");
    }
}
