//! Model-check suite for the telemetry shard-merge protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg octopus_model"` (the CI
//! `model-check` job); the sync primitives inside
//! `octopus-telemetry` then resolve to the vendored loom doubles and
//! `octopus_sync::model` exhaustively explores thread interleavings.
//!
//! Checked invariants:
//! * counter totals are monotone under a concurrent reader and exact
//!   after quiescence;
//! * a histogram snapshot never reports more `count` than bucket
//!   increments (the bucket-before-count / count-load-first protocol
//!   in `Histogram::record`/`snapshot`);
//! * a seeded double with the publication order inverted **fails**
//!   the same check — proof the explorer has teeth.
#![cfg(octopus_model)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use octopus_sync::atomic::{AtomicU64, Ordering};
use octopus_sync::{model, thread, Arc};
use octopus_telemetry::{Counter, Histogram};

/// Pins the main OS thread's lazy shard assignment before entering
/// `model`, so every explored execution sees an identical operation
/// sequence (the assignment ticket is process-global state that would
/// otherwise differ between the first and later executions).
fn warm_main_shard() {
    Counter::new(true).inc();
}

#[test]
fn counter_total_is_monotone_and_exact() {
    warm_main_shard();
    model(|| {
        let c = Counter::new(true);
        let (c1, c2) = (c.clone(), c.clone());
        let t1 = thread::spawn(move || c1.inc());
        let t2 = thread::spawn(move || c2.inc());
        let v1 = c.value();
        let v2 = c.value();
        assert!(v1 <= v2, "counter went backwards: {v1} then {v2}");
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(c.value(), 2, "increment lost in shard merge");
    });
}

#[test]
fn histogram_snapshot_count_never_exceeds_bucket_total() {
    warm_main_shard();
    model(|| {
        let h = Histogram::new(true);
        let (h1, h2) = (h.clone(), h.clone());
        let t1 = thread::spawn(move || h1.record(3));
        let t2 = thread::spawn(move || h2.record(700));
        let s = h.snapshot();
        let bucket_total: u64 = s.buckets.iter().sum();
        assert!(
            bucket_total >= s.count,
            "snapshot saw count={} but only {} bucket increments",
            s.count,
            bucket_total
        );
        t1.join().unwrap();
        t2.join().unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
        assert_eq!(s.sum, 703);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 700);
    });
}

/// Seeded-bug double: a single-cell histogram that publishes `count`
/// *before* the bucket increment — the exact protocol inversion the
/// real `Histogram::record` guards against.
struct MisorderedHist {
    count: AtomicU64,
    bucket: AtomicU64,
}

impl MisorderedHist {
    fn record(&self) {
        // BUG (seeded): count becomes visible before the bucket cell,
        // so a concurrent snapshot can see count > bucket total.
        self.count.fetch_add(1, Ordering::SeqCst);
        self.bucket.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn misordered_histogram_double_fails_the_check() {
    warm_main_shard();
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let h = Arc::new(MisorderedHist {
                count: AtomicU64::new(0),
                bucket: AtomicU64::new(0),
            });
            let h2 = Arc::clone(&h);
            let t = thread::spawn(move || h2.record());
            let count = h.count.load(Ordering::SeqCst);
            let bucket = h.bucket.load(Ordering::SeqCst);
            assert!(
                bucket >= count,
                "snapshot saw count={count} but only {bucket} bucket increments"
            );
            t.join().unwrap();
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model checker missed the seeded count/bucket inversion"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(
        msg.contains("bucket increments"),
        "unexpected failure report: {msg}"
    );
}
