//! Histogram correctness: merging per-worker shards must be
//! observationally identical to a single-threaded reference recorder
//! over the same multiset of values — counts, per-bucket sums, sum,
//! min and max — regardless of how the values are interleaved across
//! recording threads.

use octopus_telemetry::{bucket_of, HistogramSnapshot, Registry, BUCKETS};
use proptest::prelude::*;

/// Plain single-threaded model of the histogram.
struct Reference {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Reference {
    fn new() -> Self {
        Reference {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v); // fetch_add wraps too
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn assert_matches(&self, snap: &HistogramSnapshot) {
        assert_eq!(snap.count, self.count);
        assert_eq!(snap.sum, self.sum);
        assert_eq!(snap.min, self.min);
        assert_eq!(snap.max, self.max);
        assert_eq!(snap.buckets, self.buckets);
    }
}

fn values(seed: u64, n: usize) -> Vec<u64> {
    // Mix magnitudes so many distinct buckets are hit.
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let shift = (x >> 58) as u32 % 48;
            x >> shift
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-threaded: the sharded histogram equals the reference.
    #[test]
    fn sharded_equals_reference_sequential(seed in 0u64..10_000, n in 1usize..2_000) {
        let reg = Registry::new(true);
        let h = reg.histogram("h");
        let mut model = Reference::new();
        for v in values(seed, n) {
            h.record(v);
            model.record(v);
        }
        model.assert_matches(&h.snapshot());
    }

    /// Concurrent: values split across threads land in different
    /// shards, but the merged snapshot still equals the reference
    /// built from the full multiset.
    #[test]
    fn sharded_equals_reference_concurrent(seed in 0u64..10_000, n in 1usize..4_000, threads in 2usize..8) {
        let reg = Registry::new(true);
        let h = reg.histogram("h");
        let vals = values(seed, n);
        let mut model = Reference::new();
        for &v in &vals {
            model.record(v);
        }
        std::thread::scope(|scope| {
            for chunk in vals.chunks(n.div_ceil(threads)) {
                let h = h.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        // Threads joined → quiescent snapshot must be exact.
        model.assert_matches(&h.snapshot());
    }

    /// Counters merge exactly too.
    #[test]
    fn counter_total_is_exact_concurrent(per_thread in 1u64..5_000, threads in 2usize..8) {
        let reg = Registry::new(true);
        let c = reg.counter("c");
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        prop_assert_eq!(c.value(), per_thread * threads as u64);
    }
}
