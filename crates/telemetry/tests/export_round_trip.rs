//! The JSON exports (snapshot and chrome trace) must round-trip
//! through `serde_json`: parse → re-serialize → parse yields an equal
//! `Value` tree, and the parsed structure carries the recorded data.

use octopus_telemetry::{span, Registry};

#[test]
fn snapshot_json_round_trips_through_serde_json() {
    let reg = Registry::new(true);
    reg.counter("seed_cache_hits_total").add(41);
    reg.gauge("seed_cache_hit_rate").set(0.75);
    let h = reg.histogram("executor_phase_ns_crawling");
    for v in [0u64, 3, 900, 1 << 40] {
        h.record(v);
    }

    let json = reg.snapshot().to_json();
    let value = serde_json::from_str(&json).expect("snapshot JSON must parse");
    let reparsed = serde_json::from_str(&serde_json::to_string(&value)).unwrap();
    assert_eq!(value, reparsed, "canonical form must be a fixed point");

    assert_eq!(
        value
            .get("counters")
            .and_then(|c| c.get("seed_cache_hits_total"))
            .and_then(|v| v.as_u64()),
        Some(41)
    );
    assert_eq!(
        value
            .get("gauges")
            .and_then(|g| g.get("seed_cache_hit_rate"))
            .and_then(|v| v.as_f64()),
        Some(0.75)
    );
    let hist = value
        .get("histograms")
        .and_then(|h| h.get("executor_phase_ns_crawling"))
        .expect("histogram family present");
    assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(4));
    let buckets = hist.get("buckets").and_then(|b| b.as_array()).unwrap();
    let total: u64 = buckets
        .iter()
        .map(|pair| pair.as_array().unwrap()[1].as_u64().unwrap())
        .sum();
    assert_eq!(total, 4, "sparse buckets must sum to count");
}

#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let reg = Registry::new(true);
    let tracer = reg.tracer();
    {
        let _step = span!(tracer, "step");
        let _crawl = span!(tracer, "crawl");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let trace = tracer.chrome_trace_json();
    let value = serde_json::from_str(&trace).expect("chrome trace must parse");
    let reparsed = serde_json::from_str(&serde_json::to_string(&value)).unwrap();
    assert_eq!(value, reparsed);

    let events = value
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), 2);
    for e in events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("ts").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        let name = e.get("name").and_then(|v| v.as_str()).unwrap();
        assert!(name == "step" || name == "crawl");
    }
}

#[test]
fn disabled_registry_exports_are_well_formed() {
    let reg = Registry::new(false);
    reg.counter("x").add(9);
    let json = reg.snapshot().to_json();
    let value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        value
            .get("counters")
            .and_then(|c| c.get("x"))
            .and_then(|v| v.as_u64()),
        Some(0),
        "disabled registry records nothing but still exports the name"
    );
    let trace = reg.tracer().chrome_trace_json();
    assert!(serde_json::from_str(&trace).is_ok());
}
