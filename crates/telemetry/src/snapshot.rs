//! Point-in-time merged view of a [`crate::Registry`], with
//! Prometheus-text and JSON renderers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, BUCKETS};

/// All metrics of a registry, merged across shards at snapshot time.
///
/// Lookups default to "nothing recorded" (0 for counters and gauges,
/// `None` for histograms) so report code can read metrics that were
/// never registered on this run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Counter total, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0.0 if absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram snapshot, if that name was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True if any metric name starts with `prefix` — the "metric
    /// family" check the serve example and CI gate use.
    pub fn has_family(&self, prefix: &str) -> bool {
        self.counters.keys().any(|k| k.starts_with(prefix))
            || self.gauges.keys().any(|k| k.starts_with(prefix))
            || self.histograms.keys().any(|k| k.starts_with(prefix))
    }

    /// Fold another snapshot into this one: counters and histogram
    /// cells add, gauges take the other's value (last write wins).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Render in the Prometheus text exposition format. Histograms
    /// emit cumulative `_bucket{le="..."}` lines (buckets above the
    /// highest occupied one are elided into `+Inf`), plus `_sum` and
    /// `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            let mut cum = 0u64;
            for i in 0..top.min(BUCKETS - 1) {
                cum += h.buckets[i];
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Render as a compact JSON document:
    ///
    /// ```json
    /// {"counters":{..},"gauges":{..},
    ///  "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
    ///                        "buckets":[[index,count],..]}}}
    /// ```
    ///
    /// Histogram buckets are sparse `[index, count]` pairs. An empty
    /// histogram serializes `min` as 0 (not `u64::MAX`). The output
    /// parses with `serde_json` (the tests round-trip it).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{min},\"max\":{},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum,
                h.max
            );
            let mut first = true;
            for (idx, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{idx},{c}]");
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Escape a metric name as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so it re-parses as a JSON number (non-finite → 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        s.counters.insert("hits_total".into(), 7);
        s.gauges.insert("hit_rate".into(), 0.875);
        let mut h = HistogramSnapshot::empty();
        for v in [1u64, 2, 2, 900] {
            h.buckets[crate::metrics::bucket_of(v)] += 1;
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        s.histograms.insert("lat_ns".into(), h);
        s
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 7"));
        assert!(text.contains("# TYPE hit_rate gauge"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_sum 905"));
        assert!(text.contains("lat_ns_count 4"));
        // Cumulative buckets are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn json_is_compact_and_sparse() {
        let json = sample().to_json();
        assert!(json.contains("\"hits_total\":7"));
        assert!(json.contains("\"hit_rate\":0.875"));
        assert!(json.contains("\"count\":4"));
        assert!(!json.contains("[0,0]"), "empty buckets must be elided");
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("hits_total"), 14);
        assert_eq!(a.histogram("lat_ns").unwrap().count, 8);
        assert_eq!(a.gauge("hit_rate"), 0.875);
    }
}
