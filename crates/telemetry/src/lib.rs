//! # octopus-telemetry
//!
//! Unified observability for the OCTOPUS serving stack: a lock-free
//! metrics [`Registry`] (sharded atomic counters, gauges, log2 latency
//! histograms — mergeable into a [`TelemetrySnapshot`]) and a span
//! [`Tracer`] whose per-worker rings export chrome://tracing JSON.
//!
//! The crate is dependency-free and layering-neutral: `octopus-core`
//! records executor phase timings into it, `octopus-service` records
//! engine/monitor/pool behaviour, and consumers (the `serve` example,
//! benches, the future self-tuning planner of ROADMAP item 4) read one
//! merged snapshot.
//!
//! ## Hot-path cost
//!
//! Every recording call is a handful of `Relaxed` atomic operations on
//! a cache-line-private shard — no locks, no allocation. A registry
//! constructed with `Registry::new(false)` turns all of them into a
//! single predictable branch, which is the disabled/enabled overhead
//! toggle required by the < 3 % qps budget (measured by the
//! `telemetry_on`/`telemetry_off` modes of `fig_throughput`).
//!
//! ## Consistency
//!
//! See [`registry`] for the exact ordering/consistency contract
//! (per-cell exactness always; whole-snapshot exactness at quiescence;
//! no cross-metric cut under concurrency).

#![deny(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use metrics::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, StaticCounter,
    BUCKETS, SHARDS,
};
pub use registry::Registry;
pub use snapshot::TelemetrySnapshot;
pub use trace::{SpanEvent, SpanGuard, Tracer, RING_CAPACITY};

/// Fraction `n / d`, or 0.0 when the denominator is zero — the shared
/// definition behind every hit-rate gauge in the workspace.
pub fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}
