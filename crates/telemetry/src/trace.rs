//! Lightweight span tracing: `span!` guards record start/duration
//! pairs into per-worker ring buffers, exportable as a
//! chrome://tracing-compatible JSON trace.
//!
//! Rings are striped per worker shard (same shard assignment as the
//! metrics, see [`crate::metrics`]), so recording takes an
//! uncontended per-shard lock — no global serialization point. Each
//! ring keeps the most recent [`RING_CAPACITY`] spans and counts what
//! it dropped.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{shard_index, SHARDS};
use crate::snapshot::{json_f64, json_string};

/// Spans retained per worker ring; older spans are dropped (counted).
pub const RING_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Static span name (the taxonomy is documented in the README).
    pub name: &'static str,
    /// Start time in microseconds since the tracer was created.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Worker shard that recorded the span (chrome trace `tid`).
    pub tid: usize,
}

#[derive(Default)]
struct SpanRing {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

struct TracerInner {
    enabled: bool,
    epoch: Instant,
    rings: [Mutex<SpanRing>; SHARDS],
}

/// Handle for recording and exporting spans. Cheap to clone.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Create a tracer; disabled tracers hand out no-op guards.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled,
                epoch: Instant::now(),
                rings: std::array::from_fn(|_| Mutex::new(SpanRing::default())),
            }),
        }
    }

    /// Start a span; it is recorded when the returned guard drops.
    /// Prefer the [`crate::span!`] macro at call sites.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: if self.inner.enabled {
                Some(&self.inner)
            } else {
                None
            },
            name,
            start: Instant::now(),
        }
    }

    /// All retained spans, in recording order per shard.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in &self.inner.rings {
            out.extend(ring.lock().unwrap().events.iter().cloned());
        }
        out
    }

    /// Total spans evicted from full rings.
    pub fn dropped(&self) -> u64 {
        self.inner
            .rings
            .iter()
            .map(|r| r.lock().unwrap().dropped)
            .sum()
    }

    /// Discard all retained spans (keeps the drop counts).
    pub fn clear(&self) {
        for ring in &self.inner.rings {
            ring.lock().unwrap().events.clear();
        }
    }

    /// Export retained spans as a chrome://tracing JSON document
    /// (load via chrome://tracing or https://ui.perfetto.dev). Events
    /// are complete-phase (`"ph":"X"`) with microsecond timestamps,
    /// sorted by start time.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = self.events();
        events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"octopus\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                json_string(e.name),
                json_f64(e.start_us),
                json_f64(e.dur_us),
                e.tid
            ));
        }
        out.push_str("]}");
        out
    }
}

/// RAII guard produced by [`Tracer::span`]; records the span on drop.
pub struct SpanGuard<'a> {
    tracer: Option<&'a TracerInner>,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.tracer else { return };
        let event = SpanEvent {
            name: self.name,
            start_us: self
                .start
                .saturating_duration_since(inner.epoch)
                .as_secs_f64()
                * 1e6,
            dur_us: self.start.elapsed().as_secs_f64() * 1e6,
            tid: shard_index(),
        };
        let mut ring = inner.rings[event.tid].lock().unwrap();
        if ring.events.len() == RING_CAPACITY {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }
}

/// Open a span on a [`Tracer`]: `let _g = span!(tracer, "crawl");`.
/// The span ends (and is recorded) when the guard goes out of scope.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $crate::Tracer::span(&$tracer, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let t = Tracer::new(true);
        {
            let _g = crate::span!(t, "outer");
            let _h = crate::span!(t, "inner");
        }
        let names: Vec<_> = t.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
        for e in t.events() {
            assert!(e.dur_us >= 0.0 && e.start_us >= 0.0);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        let _g = t.span("noop");
        drop(_g);
        assert!(t.events().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(true);
        for _ in 0..RING_CAPACITY + 10 {
            drop(t.span("s"));
        }
        assert!(t.events().len() <= RING_CAPACITY * SHARDS);
        // All spans from this single thread went to one ring.
        assert_eq!(t.dropped(), 10);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 10);
    }

    #[test]
    fn chrome_trace_is_json_shaped() {
        let t = Tracer::new(true);
        drop(t.span("a\"b"));
        let json = t.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\\\""), "names must be escaped");
    }
}
