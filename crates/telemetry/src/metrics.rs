//! Lock-free metric primitives: sharded counters, f64 gauges and
//! fixed-bucket log2 histograms.
//!
//! # Sharding
//!
//! Counters and histograms spread their hot atomic cells over
//! [`SHARDS`] cache-line-aligned shards. Each recording thread is
//! lazily assigned a shard (round-robin over a process-global
//! counter), so concurrent recorders on different cores never contend
//! on the same cache line as long as the worker count stays at or
//! below the shard count. Reading merges all shards; see the module
//! docs in [`crate::registry`] for the exact consistency contract.

use octopus_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use octopus_sync::Arc;
use std::time::Duration;

/// Number of per-metric shards. A power of two at least as large as
/// the worker pools this workspace spawns in practice. Shrunk under
/// `cfg(octopus_model)` so the interleaving explorer's schedule tree
/// (one switch point per shard access) stays tractable.
pub const SHARDS: usize = if cfg!(octopus_model) { 2 } else { 16 };

/// Number of log2 histogram buckets. Bucket `i > 0` counts values in
/// `[2^(i-1), 2^i)`; bucket 0 counts the value `0`; the last bucket
/// also absorbs everything at or above `2^(BUCKETS-1)`. Shrunk under
/// `cfg(octopus_model)` for the same reason as [`SHARDS`].
pub const BUCKETS: usize = if cfg!(octopus_model) { 8 } else { 64 };

/// The bucket index a value lands in: `0` for `0`, else
/// `floor(log2(v)) + 1`, clamped to the last bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One atomic cell padded to a cache line so neighbouring shards
/// never false-share.
#[repr(align(64))]
struct PadCell(AtomicU64);

impl PadCell {
    const fn new(v: u64) -> Self {
        PadCell(AtomicU64::new(v))
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The calling thread's shard index, assigned round-robin on first use.
#[inline]
pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            // relaxed: round-robin ticket for load spreading only; no
            // other memory is published through this counter.
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
            v
        }
    })
}

struct CounterCore {
    shards: [PadCell; SHARDS],
}

/// A monotonically increasing, shard-striped counter.
///
/// Cloning is cheap (the clones share storage). Increments are single
/// `Relaxed` `fetch_add`s on the caller's shard; [`Counter::value`]
/// sums all shards.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
    enabled: bool,
}

impl Counter {
    /// A fresh counter. Normally obtained from a
    /// [`crate::Registry`]; public so the model-check suites can
    /// construct one directly.
    pub fn new(enabled: bool) -> Self {
        Counter {
            core: Arc::new(CounterCore {
                shards: std::array::from_fn(|_| PadCell::new(0)),
            }),
            enabled,
        }
    }

    /// Add `n` to the counter. A no-op on a disabled registry.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            // relaxed: each shard cell is an independent monotone
            // total; per-location coherence alone makes repeated
            // reads of any one shard non-decreasing, which is all
            // `value` needs (see model_metrics.rs).
            self.core.shards[shard_index()]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards. Monotone across calls from
    /// one thread; may lag concurrent increments.
    pub fn value(&self) -> u64 {
        self.core
            .shards
            .iter()
            // relaxed: see `add` — per-shard coherence keeps each
            // term (and hence the sum of monotone terms) monotone.
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A process-global counter with `const` construction, for `static`
/// use where a [`crate::Registry`] is not in scope (e.g. the worker
/// pool's spawn counter). Single-cell: intended for rare events.
pub struct StaticCounter(AtomicU64);

impl StaticCounter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        StaticCounter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed: single monotone cell, read only for reporting.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        // relaxed: see `add`.
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for StaticCounter {
    fn default() -> Self {
        StaticCounter::new()
    }
}

/// A last-write-wins `f64` gauge (stored as bits in one atomic).
#[derive(Clone)]
pub struct Gauge {
    core: Arc<AtomicU64>,
    enabled: bool,
}

impl Gauge {
    /// A fresh gauge. Normally obtained from a [`crate::Registry`];
    /// public so the model-check suites can construct one directly.
    pub fn new(enabled: bool) -> Self {
        Gauge {
            core: Arc::new(AtomicU64::new(0f64.to_bits())),
            enabled,
        }
    }

    /// Set the gauge. A no-op on a disabled registry.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled {
            // relaxed: last-write-wins sample; readers want *a*
            // recent value, not ordering against other memory.
            self.core.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Set from an integer (exact up to 2^53).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        // relaxed: see `set`.
        f64::from_bits(self.core.load(Ordering::Relaxed))
    }
}

/// One histogram shard: cache-line aligned so concurrent recorders on
/// different shards never false-share the count/sum/min/max header.
#[repr(align(64))]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct HistCore {
    shards: [HistShard; SHARDS],
}

/// A shard-striped log2 histogram over `u64` values (typically
/// nanoseconds or element counts). Tracks per-bucket counts plus
/// exact `count`, `sum`, `min` and `max`.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
    enabled: bool,
}

impl Histogram {
    /// A fresh histogram. Normally obtained from a
    /// [`crate::Registry`]; public so the model-check suites can
    /// construct one directly.
    pub fn new(enabled: bool) -> Self {
        Histogram {
            core: Arc::new(HistCore {
                shards: std::array::from_fn(|_| HistShard::new()),
            }),
            enabled,
        }
    }

    /// Record one value. Five atomic ops on the caller's shard; a
    /// no-op on a disabled registry.
    ///
    /// Protocol: the bucket cell is bumped *before* `count`, and
    /// `count` is the only `Release` op. Paired with the `Acquire`
    /// load in [`Histogram::snapshot`], that keeps the snapshot
    /// invariant "bucket total >= count" in every interleaving.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled {
            return;
        }
        let s = &self.core.shards[shard_index()];
        // relaxed: ordered against readers by the Release on `count`
        // below, not by this op itself.
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // Release: publishes the bucket increment above. Regression
        // note: this was Relaxed until the PR-9 concurrency audit —
        // a Relaxed pair lets `snapshot` observe the new count but
        // miss the bucket increment, breaking quantile math;
        // crates/telemetry/tests/model_metrics.rs seeds exactly that
        // bug and the model checker catches it.
        s.count.fetch_add(1, Ordering::Release);
        // relaxed: sum/min/max are advisory point-in-time stats; each
        // cell is per-location coherent, and nothing downstream
        // derives cross-cell invariants from them.
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge all shards into a point-in-time [`HistogramSnapshot`].
    ///
    /// Guarantees `buckets` sum to at least `count` (see
    /// [`Histogram::record`]); values recorded concurrently with the
    /// scan may or may not be included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in &self.core.shards {
            // Acquire: pairs with the Release fetch_add in `record`
            // so every bucket increment published by an observed
            // count is visible to the bucket loads below. Must stay
            // the first load of the shard.
            out.count += s.count.load(Ordering::Acquire);
            // relaxed: advisory stats, see `record`.
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.min = out.min.min(s.min.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (b, cell) in out.buckets.iter_mut().zip(s.buckets.iter()) {
                // relaxed: reads at least the increments published by
                // the Acquire on `count` above; later ones are a
                // harmless over-count of the in-flight tail.
                *b += cell.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// Merged, immutable view of a [`Histogram`] (or of several, via
/// [`HistogramSnapshot::merge`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping only past 2^64).
    pub sum: u64,
    /// Smallest recorded value; `u64::MAX` when empty.
    pub min: u64,
    /// Largest recorded value; `0` when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`). Returns 0 when empty. Exact to within one
    /// power of two, which is the histogram's resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let c = Counter::new(false);
        c.add(5);
        assert_eq!(c.value(), 0);
        let h = Histogram::new(false);
        h.record(9);
        assert!(h.snapshot().is_empty());
        let g = Gauge::new(false);
        g.set(1.5);
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let h = Histogram::new(true);
        for v in [0u64, 1, 7, 1024, 1025] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2057);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1025);
        assert_eq!(s.buckets[bucket_of(1024)], 2);
        assert!((s.mean() - 2057.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_bucket_resolution() {
        let h = Histogram::new(true);
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), 100);
        let p50 = s.quantile(0.5);
        assert!((32..=63).contains(&p50), "p50 bucket bound was {p50}");
    }
}
