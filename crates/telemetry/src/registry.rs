//! The metric registry: named counters/gauges/histograms plus a
//! [`Tracer`], snapshotted as one [`TelemetrySnapshot`].
//!
//! # Ordering and consistency guarantees
//!
//! Recording uses `Relaxed` atomics throughout — metrics never
//! synchronize the threads that record into them, and recording a
//! metric is not a memory fence.
//!
//! - **Per-cell exactness.** No increment is ever lost: every `add`
//!   and `record` lands in exactly one shard cell via read-modify-write
//!   atomics.
//! - **Quiescent exactness.** A snapshot taken after recording threads
//!   have quiesced (joined, or synchronized with the reader through a
//!   lock, channel or `Acquire/Release` edge — as every pool in this
//!   workspace does at batch boundaries) observes exact totals:
//!   histogram `count == Σ buckets` and `sum`/`min`/`max` agree with a
//!   single-threaded reference recorder over the same multiset of
//!   values.
//! - **Concurrent snapshots are per-cell atomic only.** A snapshot
//!   racing with recorders may observe a histogram mid-record (e.g.
//!   the bucket incremented but `count` not yet), and is not a
//!   consistent cut **across** metrics. Totals are monotone: re-reading
//!   never goes backwards.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex; it is
//! meant for startup, not hot paths. Handles returned from it record
//! without any lock.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::TelemetrySnapshot;
use crate::trace::Tracer;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Inner {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
    tracer: Tracer,
}

/// A cheaply cloneable handle to a metrics registry.
///
/// Construct with [`Registry::new`]; a registry built disabled turns
/// every handle it hands out into a no-op recorder (one predictable
/// branch per call), which is the overhead-budget toggle.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Create a registry. `enabled == false` makes all recording
    /// no-ops while keeping the full API usable.
    pub fn new(enabled: bool) -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled,
                metrics: Mutex::new(BTreeMap::new()),
                tracer: Tracer::new(enabled),
            }),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The registry's span tracer.
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.clone()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new(self.inner.enabled)))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new(self.inner.enabled)))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(self.inner.enabled)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Merge every metric's shards into a point-in-time
    /// [`TelemetrySnapshot`] (see the module docs for what
    /// "point-in-time" does and does not promise under concurrency).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let map = self.inner.metrics.lock().unwrap();
        let mut snap = TelemetrySnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.value());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new(true);
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new(true);
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let r = Registry::new(true);
        r.counter("c").add(1);
        r.gauge("g").set(0.25);
        r.histogram("h").record(42);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 1);
        assert_eq!(s.gauge("g"), 0.25);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert!(s.has_family("c") && s.has_family("h"));
        assert!(!s.has_family("nope"));
    }
}
