//! Dynamic polyhedral mesh core for the OCTOPUS reproduction.
//!
//! A [`Mesh`] is the in-memory dataset a simulation mutates in place:
//!
//! * an array of vertex **positions** — rewritten (almost) entirely at
//!   every simulation time step;
//! * a list of **cells** (tetrahedra or hexahedra, [`CellKind`]);
//! * a CSR **vertex adjacency** (the paper's adjacency-list
//!   representation: "for each vertex the position as well as pointers to
//!   neighbouring vertices");
//! * the **global face list** machinery (§IV-E1): a face belongs to the
//!   mesh surface iff exactly one cell references it.
//!
//! Deformation (position changes) never touches connectivity, so surface
//! and adjacency stay valid across time steps — the key property OCTOPUS
//! exploits. The rare *restructuring* transformation (§IV-E2) is
//! supported through [`Mesh::remove_cell`] / [`Mesh::refine_tet`], which
//! report exact [`SurfaceDelta`]s for incremental surface-index
//! maintenance.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adjacency;
pub mod cell;
mod error;
pub mod io;
mod mesh;
pub mod soa;
pub mod stats;
pub mod surface;
pub mod validate;

pub use adjacency::Csr;
pub use cell::{CellKind, FaceKey};
pub use error::MeshError;
pub use mesh::{Mesh, PositionBlocksRef, SurfaceDelta};
pub use octopus_geom::{CellId, VertexId};
pub use soa::{block_lane, PositionBlock, PositionBlocks, BLOCK_LANES};
pub use stats::MeshStats;
pub use surface::Surface;
