//! Blocked structure-of-arrays position store — the crawl's hot-path
//! memory layout.
//!
//! The crawl's inner loop gathers neighbour positions at random ids;
//! with the [`crate::Mesh`]'s array-of-structs `Vec<Point3>` every
//! gather costs one (sometimes two — a 12-byte `Point3` can straddle)
//! cache lines that are shared with at most four neighbouring ids. The
//! blocked SoA form groups [`BLOCK_LANES`] = 16 consecutive vertex ids
//! into one 64-byte-aligned [`PositionBlock`]: an `x` lane, a `y` lane
//! and a `z` lane of 16 `f32` each, so one lane is exactly one cache
//! line and one block is exactly three. A layout that packs a vertex's
//! neighbours into its own block (the cache-oblivious recursive
//! bisection in `octopus_core::layout`) then re-uses those three lines
//! for the whole neighbourhood, and the per-lane containment test
//! (`x ≥ min.x && …`) reads each lane sequentially — the form the
//! compiler can vectorise.
//!
//! The store is a *derived mirror* of the canonical `Vec<Point3>`:
//! [`crate::Mesh::positions`]/[`crate::Mesh::positions_mut`] keep their
//! exact signatures, and the mesh rebuilds the mirror lazily (stamped,
//! see `Mesh::position_blocks`) after deformation. Lane data is
//! therefore never mutated directly — the `soa_xs`/`soa_ys`/`soa_zs`
//! fields are crate-private and `xtask lint`'s `soa-accessor` rule
//! additionally forbids naming them outside `crates/mesh`, so every
//! consumer goes through the read accessors and can never desync the
//! mirror.

use octopus_geom::{Point3, Region};

/// Vertex ids per block: 16 `f32` lane entries fill one 64-byte line.
pub const BLOCK_LANES: usize = 16;

/// One block of [`BLOCK_LANES`] vertices in SoA form: three 64-byte
/// lanes (x, y, z), 192 bytes total, 64-byte aligned so each lane is
/// exactly one cache line.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
pub struct PositionBlock {
    soa_xs: [f32; BLOCK_LANES],
    soa_ys: [f32; BLOCK_LANES],
    soa_zs: [f32; BLOCK_LANES],
}

/// Tail-lane filler: NaN fails every closed containment test, so a
/// probe of an unused lane can never produce a phantom vertex even if a
/// caller forgets the length check.
const EMPTY_LANE: f32 = f32::NAN;

impl PositionBlock {
    const EMPTY: PositionBlock = PositionBlock {
        soa_xs: [EMPTY_LANE; BLOCK_LANES],
        soa_ys: [EMPTY_LANE; BLOCK_LANES],
        soa_zs: [EMPTY_LANE; BLOCK_LANES],
    };

    /// The x lane (one cache line of 16 coordinates).
    #[inline(always)]
    pub fn xs(&self) -> &[f32; BLOCK_LANES] {
        &self.soa_xs
    }

    /// The y lane.
    #[inline(always)]
    pub fn ys(&self) -> &[f32; BLOCK_LANES] {
        &self.soa_ys
    }

    /// The z lane.
    #[inline(always)]
    pub fn zs(&self) -> &[f32; BLOCK_LANES] {
        &self.soa_zs
    }

    /// The position stored in lane `l`, reassembled as a [`Point3`].
    #[inline(always)]
    pub fn lane(&self, l: usize) -> Point3 {
        Point3::new(self.soa_xs[l], self.soa_ys[l], self.soa_zs[l])
    }

    /// Evaluates `q` on all [`BLOCK_LANES`] lanes at once, returning a
    /// lane bitmask. The trip count is fixed and each lane array is one
    /// sequentially-read cache line — the shape the compiler can turn
    /// into SIMD compares — so this is the batched form of a
    /// consecutive-id containment scan: callers test 16 ids per call
    /// and skip a whole block on a zero mask. Padding lanes hold NaN,
    /// which fails every closed containment test, so their mask bits
    /// are always zero.
    #[inline]
    pub fn region_mask<R: Region>(&self, q: &R) -> u32 {
        let mut mask = 0u32;
        for l in 0..BLOCK_LANES {
            mask |=
                u32::from(q.contains_coords(self.soa_xs[l], self.soa_ys[l], self.soa_zs[l])) << l;
        }
        mask
    }
}

/// The blocked SoA position store: `ceil(len / 16)` aligned blocks.
///
/// Vertex `v` lives in block `v / 16`, lane `v % 16` (see
/// [`block_lane`]), so consecutive ids share blocks — the
/// cache-oblivious layout's leaf blocks map one-to-one onto these.
#[derive(Clone, Debug, Default)]
pub struct PositionBlocks {
    blocks: Vec<PositionBlock>,
    len: usize,
}

/// Splits a vertex id into its `(block, lane)` coordinates.
#[inline(always)]
pub fn block_lane(v: usize) -> (usize, usize) {
    (v / BLOCK_LANES, v % BLOCK_LANES)
}

impl PositionBlocks {
    /// Builds the store from an AoS position slice.
    pub fn from_points(points: &[Point3]) -> PositionBlocks {
        let mut blocks = PositionBlocks::default();
        blocks.rebuild(points);
        blocks
    }

    /// Rebuilds the store in place (reusing the block allocation when
    /// the vertex count allows) — the post-deformation resync path.
    /// Every lane is reset to the NaN poison first, so tail lanes (and
    /// lanes freed by a shrink) can never leak stale coordinates.
    pub fn rebuild(&mut self, points: &[Point3]) {
        self.len = points.len();
        let num_blocks = points.len().div_ceil(BLOCK_LANES);
        self.blocks.clear();
        self.blocks.resize(num_blocks, PositionBlock::EMPTY);
        for (v, p) in points.iter().enumerate() {
            let (b, l) = block_lane(v);
            let block = &mut self.blocks[b];
            block.soa_xs[l] = p.x;
            block.soa_ys[l] = p.y;
            block.soa_zs[l] = p.z;
        }
    }

    /// Number of stored positions (not blocks).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block array (length `ceil(len / 16)`).
    #[inline(always)]
    pub fn blocks(&self) -> &[PositionBlock] {
        &self.blocks
    }

    /// The position of vertex `v`, reassembled from its lanes.
    ///
    /// # Panics
    /// Panics when `v ≥ len`.
    #[inline]
    pub fn get(&self, v: usize) -> Point3 {
        assert!(v < self.len, "vertex {v} out of range (len {})", self.len);
        let (b, l) = block_lane(v);
        self.blocks[b].lane(l)
    }

    /// Heap bytes of the block array, *including* the tail-block
    /// alignment padding (unused lanes cost real memory; `memory_bytes`
    /// consumers must see them).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<PositionBlock>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new(i as f32, 2.0 * i as f32, -(i as f32)))
            .collect()
    }

    #[test]
    fn block_layout_is_64_byte_aligned_and_three_lines() {
        assert_eq!(std::mem::align_of::<PositionBlock>(), 64);
        assert_eq!(std::mem::size_of::<PositionBlock>(), 192);
        let store = PositionBlocks::from_points(&points(40));
        for b in store.blocks() {
            assert_eq!((b as *const PositionBlock as usize) % 64, 0);
        }
    }

    #[test]
    fn round_trips_every_position() {
        for n in [0usize, 1, 15, 16, 17, 40, 64] {
            let pts = points(n);
            let store = PositionBlocks::from_points(&pts);
            assert_eq!(store.len(), n);
            assert_eq!(store.blocks().len(), n.div_ceil(BLOCK_LANES));
            for (v, p) in pts.iter().enumerate() {
                assert_eq!(store.get(v), *p, "vertex {v} of {n}");
            }
        }
    }

    #[test]
    fn tail_lanes_are_poisoned() {
        let store = PositionBlocks::from_points(&points(17));
        let last = &store.blocks()[1];
        for l in 1..BLOCK_LANES {
            assert!(last.xs()[l].is_nan());
            assert!(last.ys()[l].is_nan());
            assert!(last.zs()[l].is_nan());
        }
    }

    #[test]
    fn rebuild_shrink_repoisons_tail() {
        let mut store = PositionBlocks::from_points(&points(32));
        store.rebuild(&points(18));
        assert_eq!(store.len(), 18);
        assert_eq!(store.blocks().len(), 2);
        assert_eq!(store.get(17), points(18)[17]);
        assert!(store.blocks()[1].xs()[5].is_nan(), "stale lane survived");
    }

    #[test]
    fn memory_accounting_counts_padding() {
        let store = PositionBlocks::from_points(&points(17));
        // Two blocks of 192 bytes each, even though only 17 of 32 lanes
        // hold data.
        assert!(store.memory_bytes() >= 2 * 192);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_checks_the_length_not_the_block_count() {
        let store = PositionBlocks::from_points(&points(17));
        store.get(17); // block 1 exists, lane 1 is padding
    }
}
