//! Whole-mesh consistency checks.
//!
//! Generators and property tests use [`validate`] to assert that a mesh
//! is well-formed: finite positions, manifold faces, symmetric adjacency.
//! Production query paths never call this (it is O(mesh)).

use crate::{Mesh, MeshError};

/// Report of a full validation pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValidationReport {
    /// Number of live cells inspected.
    pub cells_checked: usize,
    /// Number of boundary faces found.
    pub boundary_faces: usize,
    /// Number of connected components.
    pub components: usize,
}

/// Validates the mesh, returning statistics on success.
///
/// Checks performed:
/// 1. every position is finite;
/// 2. the global face list is manifold (each face on ≤ 2 cells);
/// 3. CSR adjacency is symmetric and sorted;
/// 4. every adjacency edge is realised by at least one live cell edge.
pub fn validate(mesh: &Mesh) -> Result<ValidationReport, MeshError> {
    for (v, p) in mesh.positions().iter().enumerate() {
        if !p.is_finite() {
            return Err(MeshError::NonFinitePosition { vertex: v as u32 });
        }
    }

    // Manifoldness falls out of surface extraction.
    let surface = mesh.surface()?;

    // Adjacency symmetry + sortedness.
    let adj = mesh.adjacency();
    for v in 0..mesh.num_vertices() as u32 {
        let ns = adj.neighbors(v);
        debug_assert!(
            ns.windows(2).all(|w| w[0] < w[1]),
            "neighbour lists must be sorted"
        );
        for &w in ns {
            if !adj.has_edge(w, v) {
                // Symmetry violations can only arise from internal bugs,
                // not user input; surface a consistent error anyway.
                return Err(MeshError::DegenerateCell { cell: 0, vertex: v });
            }
        }
    }

    // Every CSR edge must come from a live cell.
    let mut expected =
        std::collections::HashSet::<(u32, u32)>::with_capacity(adj.num_directed_edges());
    for (_, cell) in mesh.live_cells() {
        for (a, b) in mesh.kind().edges(cell) {
            expected.insert((a.min(b), a.max(b)));
        }
    }
    let mut actual = 0usize;
    for v in 0..mesh.num_vertices() as u32 {
        for &w in adj.neighbors(v) {
            if v < w {
                actual += 1;
                if !expected.contains(&(v, w)) {
                    return Err(MeshError::DegenerateCell { cell: 0, vertex: v });
                }
            }
        }
    }
    debug_assert_eq!(
        actual,
        expected.len(),
        "adjacency must cover all cell edges"
    );

    let (_, components) = adj.connected_components();
    Ok(ValidationReport {
        cells_checked: mesh.num_cells(),
        boundary_faces: surface.num_boundary_faces(),
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;

    fn tet_mesh() -> Mesh {
        let positions = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        Mesh::from_tets(positions, vec![[0, 1, 2, 3]]).unwrap()
    }

    #[test]
    fn valid_mesh_passes() {
        let r = validate(&tet_mesh()).unwrap();
        assert_eq!(r.cells_checked, 1);
        assert_eq!(r.boundary_faces, 4);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn nan_position_is_rejected() {
        let mut m = tet_mesh();
        m.positions_mut()[2] = Point3::new(f32::NAN, 0.0, 0.0);
        assert!(matches!(
            validate(&m),
            Err(MeshError::NonFinitePosition { vertex: 2 })
        ));
    }

    #[test]
    fn validation_after_restructuring() {
        let mut m = tet_mesh();
        m.enable_restructuring().unwrap();
        m.refine_tet(0).unwrap();
        let r = validate(&m).unwrap();
        assert_eq!(r.cells_checked, 4);
        assert_eq!(r.boundary_faces, 4);
    }
}
