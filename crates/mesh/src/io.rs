//! Mesh import/export.
//!
//! Two formats, both motivated by the paper's monitoring use cases:
//!
//! * **Wavefront OBJ** surface export ([`write_surface_obj`]) — the
//!   visualization monitors (§III-B) hand retrieved geometry to
//!   renderers; OBJ is the lingua franca for that.
//! * A compact **binary snapshot** ([`write_snapshot`] /
//!   [`read_snapshot`]) that round-trips a whole [`Mesh`] (positions +
//!   cells), so expensive generated datasets can be cached between
//!   experiment runs.

use crate::{CellKind, Mesh, MeshError};
use octopus_geom::Point3;
use std::io::{self, BufRead, Read, Write};

/// Magic bytes of the snapshot format ("OCT1").
const MAGIC: [u8; 4] = *b"OCT1";

/// Writes the mesh's *surface triangles/quads* as Wavefront OBJ.
///
/// Vertices are written 1-based in id order (OBJ requirement); interior
/// vertices are written too (keeping ids stable) but only boundary faces
/// are emitted. Output reflects the mesh's **current** deformed
/// positions.
pub fn write_surface_obj(mesh: &Mesh, w: &mut impl Write) -> Result<(), ObjError> {
    let surface_faces = boundary_faces(mesh)?;
    writeln!(
        w,
        "# OCTOPUS surface export: {} vertices, {} boundary faces",
        mesh.num_vertices(),
        surface_faces.len()
    )?;
    for p in mesh.positions() {
        writeln!(w, "v {} {} {}", p.x, p.y, p.z)?;
    }
    for face in &surface_faces {
        write!(w, "f")?;
        for &v in face {
            write!(w, " {}", v + 1)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Collects each boundary face's vertex ids (canonical order).
fn boundary_faces(mesh: &Mesh) -> Result<Vec<Vec<u32>>, ObjError> {
    use std::collections::HashMap;
    let kind = mesh.kind();
    let mut counts: HashMap<crate::FaceKey, u32> = HashMap::new();
    for (_, cell) in mesh.live_cells() {
        for key in kind.face_keys(cell) {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    Ok(counts
        .into_iter()
        .filter(|(_, c)| *c == 1)
        .map(|(k, _)| k.vertices().to_vec())
        .collect())
}

/// OBJ export errors.
#[derive(Debug)]
pub enum ObjError {
    /// Underlying I/O failure.
    Io(io::Error),
}

impl From<io::Error> for ObjError {
    fn from(e: io::Error) -> Self {
        ObjError::Io(e)
    }
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjError::Io(e) => write!(f, "obj export I/O error: {e}"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Snapshot errors.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot / wrong version.
    BadMagic,
    /// Structurally invalid payload.
    Corrupt(&'static str),
    /// The decoded mesh failed validation.
    Mesh(MeshError),
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<MeshError> for SnapshotError {
    fn from(e: MeshError) -> Self {
        SnapshotError::Mesh(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an OCT1 snapshot"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Mesh(e) => write!(f, "snapshot decodes to an invalid mesh: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Writes a binary snapshot: magic, cell kind, counts, little-endian
/// positions and cell ids. Tombstoned cells are compacted away.
pub fn write_snapshot(mesh: &Mesh, w: &mut impl Write) -> Result<(), SnapshotError> {
    w.write_all(&MAGIC)?;
    w.write_all(&[match mesh.kind() {
        CellKind::Tet4 => 0u8,
        CellKind::Hex8 => 1,
    }])?;
    w.write_all(&(mesh.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(mesh.num_cells() as u64).to_le_bytes())?;
    for p in mesh.positions() {
        w.write_all(&p.x.to_le_bytes())?;
        w.write_all(&p.y.to_le_bytes())?;
        w.write_all(&p.z.to_le_bytes())?;
    }
    for (_, cell) in mesh.live_cells() {
        for &v in cell {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a snapshot produced by [`write_snapshot`] and rebuilds the mesh
/// (including adjacency; full construction-time validation applies).
pub fn read_snapshot(r: &mut impl Read) -> Result<Mesh, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut kind_byte = [0u8; 1];
    r.read_exact(&mut kind_byte)?;
    let kind = match kind_byte[0] {
        0 => CellKind::Tet4,
        1 => CellKind::Hex8,
        _ => return Err(SnapshotError::Corrupt("unknown cell kind")),
    };
    let mut n8 = [0u8; 8];
    r.read_exact(&mut n8)?;
    let num_vertices = u64::from_le_bytes(n8) as usize;
    r.read_exact(&mut n8)?;
    let num_cells = u64::from_le_bytes(n8) as usize;
    // Bound sanity before allocating (a corrupt header must not OOM us).
    if num_vertices > (1 << 33) || num_cells > (1 << 33) {
        return Err(SnapshotError::Corrupt("implausible counts"));
    }
    let mut positions = Vec::with_capacity(num_vertices);
    let mut f4 = [0u8; 4];
    for _ in 0..num_vertices {
        r.read_exact(&mut f4)?;
        let x = f32::from_le_bytes(f4);
        r.read_exact(&mut f4)?;
        let y = f32::from_le_bytes(f4);
        r.read_exact(&mut f4)?;
        let z = f32::from_le_bytes(f4);
        positions.push(Point3::new(x, y, z));
    }
    let arity = kind.arity();
    let mut cells = Vec::with_capacity(num_cells * arity);
    for _ in 0..num_cells * arity {
        r.read_exact(&mut f4)?;
        cells.push(u32::from_le_bytes(f4));
    }
    // Trailing garbage is tolerated (streams may be padded); the payload
    // itself is fully consumed above.
    Ok(Mesh::from_flat(kind, positions, cells)?)
}

/// Parses vertex lines back out of an OBJ stream (testing / round-trip
/// support; faces are not reimported — OBJ only carries the surface).
pub fn read_obj_vertices(r: &mut impl BufRead) -> Result<Vec<Point3>, ObjError> {
    let mut out = Vec::new();
    let mut line = String::new();
    while r.read_line(&mut line)? != 0 {
        let mut parts = line.split_whitespace();
        if parts.next() == Some("v") {
            let mut coords = [0.0f32; 3];
            for c in &mut coords {
                *c = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(f32::NAN);
            }
            out.push(Point3::new(coords[0], coords[1], coords[2]));
        }
        line.clear();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Aabb;

    fn tet_mesh() -> Mesh {
        let positions = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(1.0, 1.0, 1.0),
        ];
        Mesh::from_tets(positions, vec![[0, 1, 2, 3], [4, 1, 2, 3]]).unwrap()
    }

    #[test]
    fn obj_export_contains_all_vertices_and_boundary_faces_only() {
        let mesh = tet_mesh();
        let mut buf = Vec::new();
        write_surface_obj(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 5);
        // Two glued tets share one face: 8 - 2 = 6 boundary triangles.
        assert_eq!(text.lines().filter(|l| l.starts_with("f ")).count(), 6);
        // OBJ is 1-based: no face may reference index 0.
        for l in text.lines().filter(|l| l.starts_with("f ")) {
            assert!(!l.split_whitespace().skip(1).any(|t| t == "0"), "{l}");
        }
    }

    #[test]
    fn obj_vertices_roundtrip() {
        let mesh = tet_mesh();
        let mut buf = Vec::new();
        write_surface_obj(&mesh, &mut buf).unwrap();
        let parsed = read_obj_vertices(&mut &buf[..]).unwrap();
        assert_eq!(parsed.len(), mesh.num_vertices());
        for (a, b) in parsed.iter().zip(mesh.positions()) {
            assert!(a.dist_sq(*b) < 1e-12);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mesh = tet_mesh();
        let mut buf = Vec::new();
        write_snapshot(&mesh, &mut buf).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(back.kind(), mesh.kind());
        assert_eq!(back.num_vertices(), mesh.num_vertices());
        assert_eq!(back.num_cells(), mesh.num_cells());
        assert_eq!(back.positions(), mesh.positions());
        for v in 0..mesh.num_vertices() as u32 {
            assert_eq!(back.neighbors(v), mesh.neighbors(v));
        }
        let (sa, sb) = (mesh.surface().unwrap(), back.surface().unwrap());
        assert_eq!(sa.vertices(), sb.vertices());
    }

    #[test]
    fn snapshot_compacts_tombstones() {
        let mut mesh = tet_mesh();
        mesh.enable_restructuring().unwrap();
        mesh.remove_cell(0).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&mesh, &mut buf).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(back.num_cells(), 1);
        assert_eq!(back.cell_capacity(), 1, "tombstones are compacted away");
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(matches!(
            read_snapshot(&mut &b"NOPE"[..]),
            Err(SnapshotError::BadMagic)
        ));
        // Truncated payload.
        let mesh = tet_mesh();
        let mut buf = Vec::new();
        write_snapshot(&mesh, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_snapshot(&mut &buf[..]),
            Err(SnapshotError::Io(_))
        ));
        // Corrupt kind byte.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(read_snapshot(&mut &bad[..]).is_err());
    }

    #[test]
    fn snapshot_of_deformed_mesh_keeps_current_positions() {
        let mut mesh = tet_mesh();
        for p in mesh.positions_mut() {
            p.x += 3.5;
        }
        let mut buf = Vec::new();
        write_snapshot(&mesh, &mut buf).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        let bb = back.bounding_box();
        assert!(
            Aabb::new(Point3::new(3.5, 0.0, 0.0), Point3::new(4.5, 1.0, 1.0)).contains_box(&bb)
        );
    }

    #[test]
    fn hex_snapshot_roundtrip() {
        let positions = (0..8)
            .map(|i| Point3::new((i & 1) as f32, ((i >> 1) & 1) as f32, ((i >> 2) & 1) as f32))
            .collect();
        let mesh = Mesh::from_hexes(positions, vec![[0, 1, 3, 2, 4, 5, 7, 6]]).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&mesh, &mut buf).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(back.kind(), CellKind::Hex8);
        assert_eq!(back.num_cells(), 1);
    }
}
