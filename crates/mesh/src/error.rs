//! Mesh construction and mutation errors.

use crate::FaceKey;
use octopus_geom::{CellId, VertexId};

/// Errors raised while building or restructuring a [`crate::Mesh`].
#[derive(Clone, Debug, PartialEq)]
pub enum MeshError {
    /// A cell references a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// Offending cell index.
        cell: CellId,
        /// Offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the mesh.
        num_vertices: usize,
    },
    /// A cell lists the same vertex twice.
    DegenerateCell {
        /// Offending cell index.
        cell: CellId,
        /// The repeated vertex id.
        vertex: VertexId,
    },
    /// The flat cell array length is not a multiple of the cell arity.
    RaggedCellArray {
        /// Length of the provided array.
        len: usize,
        /// Required arity.
        arity: usize,
    },
    /// A face is referenced by more than two cells (non-manifold mesh).
    NonManifoldFace {
        /// Canonical face key.
        face: FaceKey,
        /// Number of referencing cells.
        count: usize,
    },
    /// A vertex position is NaN or infinite.
    NonFinitePosition {
        /// Offending vertex id.
        vertex: VertexId,
    },
    /// Operation addressed a cell id that does not exist or was removed.
    NoSuchCell {
        /// Offending cell id.
        cell: CellId,
    },
    /// Operation requires the face table (restructuring mode); call
    /// [`crate::Mesh::enable_restructuring`] first.
    RestructuringDisabled,
    /// Operation is only defined for a specific cell kind.
    WrongCellKind {
        /// What the operation needed.
        expected: crate::CellKind,
        /// What the mesh is made of.
        actual: crate::CellKind,
    },
    /// The mesh would exceed `u32` vertex ids.
    TooManyVertices,
    /// A failure originating outside the mesh layer, propagated through
    /// a mesh-returning path (e.g. a fault-injection hook refusing a
    /// scheduled restructure, or an I/O layer wrapping its own error).
    /// The mesh itself is left untouched; the operation may be retried.
    External(String),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::VertexOutOfRange {
                cell,
                vertex,
                num_vertices,
            } => write!(
                f,
                "cell {cell} references vertex {vertex} but the mesh has {num_vertices} vertices"
            ),
            MeshError::DegenerateCell { cell, vertex } => {
                write!(f, "cell {cell} lists vertex {vertex} more than once")
            }
            MeshError::RaggedCellArray { len, arity } => {
                write!(
                    f,
                    "flat cell array of length {len} is not a multiple of arity {arity}"
                )
            }
            MeshError::NonManifoldFace { face, count } => {
                write!(
                    f,
                    "face {face:?} is shared by {count} cells (at most 2 allowed)"
                )
            }
            MeshError::NonFinitePosition { vertex } => {
                write!(f, "vertex {vertex} has a NaN/inf position")
            }
            MeshError::NoSuchCell { cell } => {
                write!(f, "cell {cell} does not exist or was removed")
            }
            MeshError::RestructuringDisabled => {
                write!(
                    f,
                    "restructuring mode is disabled; call enable_restructuring() first"
                )
            }
            MeshError::WrongCellKind { expected, actual } => {
                write!(
                    f,
                    "operation requires {} cells, mesh has {}",
                    expected.name(),
                    actual.name()
                )
            }
            MeshError::TooManyVertices => write!(f, "mesh exceeds u32 vertex id space"),
            MeshError::External(msg) => write!(f, "external failure: {msg}"),
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MeshError::VertexOutOfRange {
            cell: 3,
            vertex: 9,
            num_vertices: 5,
        };
        let s = e.to_string();
        assert!(s.contains("cell 3") && s.contains("vertex 9") && s.contains('5'));
        let e = MeshError::NonManifoldFace {
            face: FaceKey::tri(1, 2, 3),
            count: 3,
        };
        assert!(e.to_string().contains("3 cells"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&MeshError::TooManyVertices);
    }
}
