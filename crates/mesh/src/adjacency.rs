//! Compressed sparse row (CSR) adjacency.
//!
//! The crawl phase (§IV-B) is a breadth-first traversal over vertex
//! neighbours; CSR keeps each vertex's neighbour list contiguous so a BFS
//! expansion is one range lookup plus a linear scan — the memory-access
//! pattern the Hilbert layout optimisation (§IV-H1) is designed around.

use octopus_geom::VertexId;

/// Immutable CSR graph over `n` vertices.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists, each sorted ascending.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from undirected edges. Duplicate and self edges are
    /// removed; each surviving edge appears in both endpoint lists.
    ///
    /// `n` is the vertex count; every edge endpoint must be `< n`.
    pub fn from_undirected_edges(
        n: usize,
        edges: impl Iterator<Item = (VertexId, VertexId)>,
    ) -> Csr {
        // Materialise both directions, then sort + dedup. Sorting a flat
        // Vec<u64> (packed pair) is cache-friendlier than sorting tuples.
        let mut packed: Vec<u64> = Vec::new();
        for (a, b) in edges {
            debug_assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            if a == b {
                continue;
            }
            packed.push((u64::from(a) << 32) | u64::from(b));
            packed.push((u64::from(b) << 32) | u64::from(a));
        }
        packed.sort_unstable();
        packed.dedup();

        let mut offsets = vec![0u32; n + 1];
        for &p in &packed {
            offsets[(p >> 32) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<VertexId> = packed.iter().map(|&p| p as u32).collect();
        let csr = Csr { offsets, targets };
        csr.debug_assert_sorted();
        csr
    }

    /// Debug-build check of the sorted-neighbour-list invariant.
    ///
    /// Each list is sorted (strictly ascending — duplicates were
    /// dedup'ed) as a *by-product* of the packed `(src, dst)` sort in
    /// [`Csr::from_undirected_edges`]; [`Csr::has_edge`]'s binary search
    /// depends on it, so any future construction path that skips the
    /// packed sort must fail loudly here rather than silently degrade
    /// `has_edge` to garbage answers.
    fn debug_assert_sorted(&self) {
        if cfg!(debug_assertions) {
            for v in 0..self.num_vertices() {
                let list = self.neighbors(v as u32);
                debug_assert!(
                    list.windows(2).all(|w| w[0] < w[1]),
                    "neighbour list of vertex {v} is not strictly sorted: {list:?}"
                );
            }
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed neighbour entries (2 × undirected edge count).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Average degree over all vertices (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / n as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }

    /// True when `b` is a neighbour of `a` (binary search).
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Heap memory used by the structure, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
    }

    /// Applies a vertex relabelling: vertex `old` becomes `perm[old]`.
    ///
    /// `perm` must be a bijection over `0..n`. Used by the Hilbert layout
    /// optimisation to co-locate spatially close vertices.
    pub fn permuted(&self, perm: &[VertexId]) -> Csr {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let edges = (0..n).flat_map(|old| {
            let new_src = perm[old];
            self.neighbors(old as u32)
                .iter()
                .filter(move |&&t| (t as usize) > old) // each undirected edge once
                .map(move |&t| (new_src, perm[t as usize]))
        });
        Csr::from_undirected_edges(n, edges)
    }

    /// Connected components; returns `(component_id_per_vertex, count)`.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut stack: Vec<VertexId> = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start as u32);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> Csr {
        // 0-1-2 triangle, vertex 3 isolated.
        Csr::from_undirected_edges(4, [(0u32, 1u32), (1, 2), (2, 0)].into_iter())
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let g = triangle_plus_isolated();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        for v in 0..4u32 {
            for &w in g.neighbors(v) {
                assert!(g.has_edge(w, v), "asymmetric edge {v}->{w}");
            }
        }
    }

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let g = Csr::from_undirected_edges(3, [(0u32, 1u32), (1, 0), (0, 1), (2, 2)].into_iter());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.num_directed_edges(), 2);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_isolated();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_undirected_edges(0, std::iter::empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        let (_, count) = g.connected_components();
        assert_eq!(count, 0);
    }

    #[test]
    fn connected_components_counts_isolated_vertices() {
        let g = triangle_plus_isolated();
        let (comp, count) = g.connected_components();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = triangle_plus_isolated();
        // Swap 0 <-> 3: the isolated vertex becomes 0.
        let perm = [3u32, 1, 2, 0];
        let p = g.permuted(&perm);
        assert_eq!(p.degree(0), 0);
        assert_eq!(p.neighbors(3), &[1, 2]);
        assert_eq!(p.neighbors(1), &[2, 3]);
        assert!(p.has_edge(2, 1));
        assert_eq!(p.num_directed_edges(), g.num_directed_edges());
    }

    #[test]
    fn neighbor_lists_are_sorted_after_build_and_permutation() {
        // A deliberately scrambled edge insertion order plus a reversing
        // permutation: both construction paths must still yield strictly
        // ascending lists (the invariant `has_edge`'s binary search and
        // the debug assertion rely on).
        let edges = [(4u32, 0u32), (2, 4), (0, 2), (3, 0), (4, 1), (1, 0)];
        let g = Csr::from_undirected_edges(5, edges.into_iter());
        let p = g.permuted(&[4, 3, 2, 1, 0]);
        for csr in [&g, &p] {
            for v in 0..5u32 {
                let list = csr.neighbors(v);
                assert!(list.windows(2).all(|w| w[0] < w[1]), "vertex {v}: {list:?}");
                for &w in list {
                    assert!(csr.has_edge(v, w), "binary search must find {v}->{w}");
                }
            }
            assert!(!csr.has_edge(0, 0));
        }
    }

    #[test]
    fn memory_accounting_is_positive_for_nonempty() {
        let g = triangle_plus_isolated();
        assert!(g.memory_bytes() >= (5 * 4) + (6 * 4));
    }
}
