//! Surface extraction via the global face list (§IV-E1).
//!
//! "A face `F` belongs to the mesh surface if it occurs once in the
//! [global face] list, i.e. there exists no adjacent polyhedron that
//! shares face `F`." Surface extraction builds that list (as a hash map
//! of canonical [`FaceKey`]s) and marks every vertex lying on a
//! single-occurrence face.
//!
//! [`FaceTable`] is the persistent variant kept alive in *restructuring
//! mode*: it supports O(faces-per-cell) cell insertion/removal and answers
//! "is this face boundary" / "which cell is the twin" queries, from which
//! [`crate::Mesh`] derives exact surface deltas.

use crate::{CellKind, FaceKey, MeshError};
use octopus_geom::{CellId, VertexId};
use std::collections::HashMap;

/// The set of surface (boundary) vertices of a mesh.
#[derive(Clone, Debug, Default)]
pub struct Surface {
    is_surface: Vec<bool>,
    vertices: Vec<VertexId>,
    num_boundary_faces: usize,
}

impl Surface {
    /// Extracts the surface of the cell collection.
    ///
    /// `num_vertices` bounds vertex ids; `cells` yields each cell's global
    /// vertex ids. Returns [`MeshError::NonManifoldFace`] when a face is
    /// shared by more than two cells.
    pub fn extract<'a>(
        kind: CellKind,
        num_vertices: usize,
        cells: impl Iterator<Item = &'a [VertexId]>,
    ) -> Result<Surface, MeshError> {
        let mut counts: HashMap<FaceKey, u8> = HashMap::new();
        for cell in cells {
            for key in kind.face_keys(cell) {
                let c = counts.entry(key).or_insert(0);
                *c += 1;
                if *c > 2 {
                    return Err(MeshError::NonManifoldFace {
                        face: key,
                        count: *c as usize,
                    });
                }
            }
        }
        let mut is_surface = vec![false; num_vertices];
        let mut num_boundary_faces = 0;
        for (key, count) in &counts {
            if *count == 1 {
                num_boundary_faces += 1;
                for &v in key.vertices() {
                    is_surface[v as usize] = true;
                }
            }
        }
        let vertices: Vec<VertexId> = (0..num_vertices as u32)
            .filter(|&v| is_surface[v as usize])
            .collect();
        Ok(Surface {
            is_surface,
            vertices,
            num_boundary_faces,
        })
    }

    /// Builds a surface directly from a membership bitmap (used by
    /// restructuring deltas and tests). [`Surface::num_boundary_faces`]
    /// reports 0; use [`Surface::from_membership_with_faces`] when the
    /// face count is known.
    pub fn from_membership(is_surface: Vec<bool>) -> Surface {
        Surface::from_membership_with_faces(is_surface, 0)
    }

    /// [`Surface::from_membership`] with an explicit boundary-face count
    /// (as maintained by [`FaceTable`] in restructuring mode).
    pub fn from_membership_with_faces(is_surface: Vec<bool>, num_boundary_faces: usize) -> Surface {
        let vertices = (0..is_surface.len() as u32)
            .filter(|&v| is_surface[v as usize])
            .collect();
        Surface {
            is_surface,
            vertices,
            num_boundary_faces,
        }
    }

    /// True when `v` lies on the mesh surface.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.is_surface[v as usize]
    }

    /// Sorted surface vertex ids.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of surface vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the mesh has no boundary (or no vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of boundary faces found during extraction.
    #[inline]
    pub fn num_boundary_faces(&self) -> usize {
        self.num_boundary_faces
    }

    /// Surface-to-volume ratio `S`: surface vertices ÷ total vertices
    /// (the paper's Fig. 4 / Fig. 8 "Surface : Volume" column).
    pub fn ratio(&self) -> f64 {
        if self.is_surface.is_empty() {
            0.0
        } else {
            self.vertices.len() as f64 / self.is_surface.len() as f64
        }
    }
}

/// Record of the 1–2 cells referencing a face.
#[derive(Clone, Copy, Debug)]
struct FaceRec {
    cells: [CellId; 2],
    count: u8,
}

/// Persistent global face list for restructuring mode (§IV-E2).
#[derive(Clone, Debug, Default)]
pub struct FaceTable {
    map: HashMap<FaceKey, FaceRec>,
}

impl FaceTable {
    /// Builds the table from all live cells.
    pub fn build<'a>(
        kind: CellKind,
        cells: impl Iterator<Item = (CellId, &'a [VertexId])>,
    ) -> Result<FaceTable, MeshError> {
        let mut table = FaceTable {
            map: HashMap::new(),
        };
        for (id, cell) in cells {
            table.insert_cell(kind, id, cell)?;
        }
        Ok(table)
    }

    /// Registers all faces of a cell.
    pub fn insert_cell(
        &mut self,
        kind: CellKind,
        id: CellId,
        cell: &[VertexId],
    ) -> Result<(), MeshError> {
        for key in kind.face_keys(cell) {
            let rec = self.map.entry(key).or_insert(FaceRec {
                cells: [CellId::MAX; 2],
                count: 0,
            });
            if rec.count >= 2 {
                return Err(MeshError::NonManifoldFace {
                    face: key,
                    count: 3,
                });
            }
            rec.cells[rec.count as usize] = id;
            rec.count += 1;
        }
        Ok(())
    }

    /// Unregisters all faces of a cell. Faces dropping to zero
    /// occurrences are deleted.
    pub fn remove_cell(&mut self, kind: CellKind, id: CellId, cell: &[VertexId]) {
        for key in kind.face_keys(cell) {
            if let Some(rec) = self.map.get_mut(&key) {
                if rec.count == 2 {
                    // Keep the surviving twin in slot 0.
                    if rec.cells[0] == id {
                        rec.cells[0] = rec.cells[1];
                    }
                    rec.cells[1] = CellId::MAX;
                    rec.count = 1;
                } else {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Occurrence count of a face (0 when absent).
    #[inline]
    pub fn count(&self, key: &FaceKey) -> usize {
        self.map.get(key).map_or(0, |r| r.count as usize)
    }

    /// True when the face occurs exactly once (is on the surface).
    #[inline]
    pub fn is_boundary(&self, key: &FaceKey) -> bool {
        self.count(key) == 1
    }

    /// The cell on the other side of `key` from `cell`, if any.
    pub fn twin(&self, key: &FaceKey, cell: CellId) -> Option<CellId> {
        let rec = self.map.get(key)?;
        if rec.count < 2 {
            return None;
        }
        if rec.cells[0] == cell {
            Some(rec.cells[1])
        } else if rec.cells[1] == cell {
            Some(rec.cells[0])
        } else {
            None
        }
    }

    /// Number of distinct faces tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no faces are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates boundary faces (count == 1).
    pub fn boundary_faces(&self) -> impl Iterator<Item = &FaceKey> {
        self.map
            .iter()
            .filter(|(_, r)| r.count == 1)
            .map(|(k, _)| k)
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        // HashMap stores (key, value) pairs plus ~1/8 control bytes per
        // bucket; capacity may exceed len.
        self.map.capacity() * (std::mem::size_of::<FaceKey>() + std::mem::size_of::<FaceRec>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tets glued on face (1,2,3): vertices 0..=4.
    fn two_tets() -> Vec<[u32; 4]> {
        vec![[0, 1, 2, 3], [4, 1, 2, 3]]
    }

    #[test]
    fn two_glued_tets_share_one_interior_face() {
        let cells = two_tets();
        let s = Surface::extract(CellKind::Tet4, 5, cells.iter().map(|c| &c[..])).unwrap();
        // 8 faces total, 1 interior (1,2,3) counted twice → 6 boundary.
        assert_eq!(s.num_boundary_faces(), 6);
        // Every vertex is on the boundary (1,2,3 are on outer faces too).
        assert_eq!(s.len(), 5);
        assert!((s.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_tet_is_all_surface() {
        let cells = [[0u32, 1, 2, 3]];
        let s = Surface::extract(CellKind::Tet4, 4, cells.iter().map(|c| &c[..])).unwrap();
        assert_eq!(s.num_boundary_faces(), 4);
        assert_eq!(s.vertices(), &[0, 1, 2, 3]);
    }

    #[test]
    fn nonmanifold_face_is_rejected() {
        // Three tets all sharing face (1,2,3).
        let cells = [[0u32, 1, 2, 3], [4, 1, 2, 3], [5, 1, 2, 3]];
        let err = Surface::extract(CellKind::Tet4, 6, cells.iter().map(|c| &c[..])).unwrap_err();
        assert!(matches!(err, MeshError::NonManifoldFace { .. }));
    }

    #[test]
    fn unreferenced_vertices_are_not_surface() {
        let cells = [[0u32, 1, 2, 3]];
        let s = Surface::extract(CellKind::Tet4, 6, cells.iter().map(|c| &c[..])).unwrap();
        assert!(!s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn face_table_tracks_counts_and_twins() {
        let cells = two_tets();
        let t = FaceTable::build(
            CellKind::Tet4,
            cells.iter().enumerate().map(|(i, c)| (i as u32, &c[..])),
        )
        .unwrap();
        let shared = FaceKey::tri(1, 2, 3);
        assert_eq!(t.count(&shared), 2);
        assert!(!t.is_boundary(&shared));
        assert_eq!(t.twin(&shared, 0), Some(1));
        assert_eq!(t.twin(&shared, 1), Some(0));
        let outer = FaceKey::tri(0, 1, 2);
        assert!(t.is_boundary(&outer));
        assert_eq!(t.twin(&outer, 0), None);
        assert_eq!(t.len(), 7); // 8 face slots, 1 shared
        assert_eq!(t.boundary_faces().count(), 6);
    }

    #[test]
    fn face_table_removal_exposes_twin_face() {
        let cells = two_tets();
        let mut t = FaceTable::build(
            CellKind::Tet4,
            cells.iter().enumerate().map(|(i, c)| (i as u32, &c[..])),
        )
        .unwrap();
        let shared = FaceKey::tri(1, 2, 3);
        t.remove_cell(CellKind::Tet4, 0, &cells[0]);
        assert_eq!(t.count(&shared), 1, "shared face becomes boundary");
        assert!(t.is_boundary(&shared));
        assert_eq!(
            t.count(&FaceKey::tri(0, 1, 2)),
            0,
            "cell-0 outer face disappears"
        );
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn face_table_reinsert_restores_counts() {
        let cells = two_tets();
        let mut t = FaceTable::build(
            CellKind::Tet4,
            cells.iter().enumerate().map(|(i, c)| (i as u32, &c[..])),
        )
        .unwrap();
        t.remove_cell(CellKind::Tet4, 1, &cells[1]);
        t.insert_cell(CellKind::Tet4, 1, &cells[1]).unwrap();
        assert_eq!(t.count(&FaceKey::tri(1, 2, 3)), 2);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn from_membership_lists_true_indices() {
        let s = Surface::from_membership(vec![true, false, true, false]);
        assert_eq!(s.vertices(), &[0, 2]);
        assert!(s.contains(0) && !s.contains(1));
        assert_eq!(s.ratio(), 0.5);
    }

    #[test]
    fn empty_surface() {
        let s = Surface::extract(CellKind::Tet4, 0, std::iter::empty()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.ratio(), 0.0);
    }
}
