//! The in-memory dynamic mesh.

use crate::soa::PositionBlocks;
use crate::surface::FaceTable;
use crate::{CellKind, Csr, FaceKey, MeshError, Surface};
use octopus_geom::{Aabb, CellId, Point3, VertexId};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{PoisonError, RwLock, RwLockReadGuard};

/// Change to the surface vertex set caused by a restructuring operation.
///
/// The paper (§IV-E2): "the surface index is updated with insert or
/// delete operations on the hash table used in the index" — this struct
/// carries exactly those operations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SurfaceDelta {
    /// Vertices that joined the surface.
    pub added: Vec<VertexId>,
    /// Vertices that left the surface.
    pub removed: Vec<VertexId>,
}

impl SurfaceDelta {
    /// True when the operation did not change the surface.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A polyhedral mesh: positions (mutated in place by simulations), cells,
/// and CSR vertex adjacency.
///
/// Two mutation regimes exist, mirroring §IV-E2:
///
/// * **Deformation** — [`Mesh::positions_mut`] rewrites coordinates;
///   connectivity, surface and adjacency stay untouched. This is the
///   per-time-step massive update.
/// * **Restructuring** — [`Mesh::remove_cell`] / [`Mesh::refine_tet`]
///   change connectivity. These require [`Mesh::enable_restructuring`]
///   (which builds the persistent global face list) and return a
///   [`SurfaceDelta`] for incremental surface-index maintenance.
#[derive(Debug)]
pub struct Mesh {
    kind: CellKind,
    positions: Vec<Point3>,
    /// Flat cell array, `kind.arity()` ids per cell. Removed cells stay as
    /// tombstones so `CellId`s remain stable across restructuring.
    cells: Vec<VertexId>,
    alive: Vec<bool>,
    num_live: usize,
    adjacency: Csr,
    /// Restructuring mode state: global face list + per-vertex count of
    /// boundary faces (surface membership ⇔ count > 0).
    restructure: Option<RestructureState>,
    /// Monotone count of committed restructuring operations — the
    /// connectivity generation. Deformation never advances it, so any
    /// consumer caching connectivity-derived state (planner crossover,
    /// surface statistics, snapshot executors) can compare epochs
    /// instead of diffing the mesh.
    restructure_epoch: u64,
    /// Bumped by every mutable-position access ([`Mesh::positions_mut`],
    /// [`Mesh::refine_tet`]'s centroid append) — the staleness stamp of
    /// the blocked-SoA mirror below.
    deform_stamp: u64,
    /// Lazily synced blocked-SoA mirror of `positions` (the crawl hot
    /// path, see [`crate::soa`]). Interior mutability is required
    /// because the mirror is (re)built on first read after a
    /// deformation, from `&self` query paths; a `RwLock` keeps the
    /// concurrent-query fast path to one uncontended read lock.
    blocks: RwLock<BlockMirror>,
}

#[derive(Debug, Default)]
struct BlockMirror {
    /// The `deform_stamp` the store was built at; `None` = never built.
    built_at: Option<u64>,
    store: PositionBlocks,
}

#[derive(Clone, Debug)]
struct RestructureState {
    faces: FaceTable,
    boundary_face_count: Vec<u32>,
}

impl Clone for Mesh {
    fn clone(&self) -> Mesh {
        Mesh {
            kind: self.kind,
            positions: self.positions.clone(),
            cells: self.cells.clone(),
            alive: self.alive.clone(),
            num_live: self.num_live,
            adjacency: self.adjacency.clone(),
            restructure: self.restructure.clone(),
            restructure_epoch: self.restructure_epoch,
            // The SoA mirror is derived state: a clone starts unsynced
            // and rebuilds on its first crawl.
            deform_stamp: 0,
            blocks: RwLock::new(BlockMirror::default()),
        }
    }
}

/// Read guard over a [`Mesh`]'s blocked-SoA position store (see
/// [`Mesh::position_blocks`]). Dereferences to [`PositionBlocks`]; the
/// store is immutable and in sync with [`Mesh::positions`] for the
/// guard's whole lifetime (position mutation needs `&mut Mesh`, which
/// the guard's mesh borrow excludes).
pub struct PositionBlocksRef<'a>(RwLockReadGuard<'a, BlockMirror>);

impl Deref for PositionBlocksRef<'_> {
    type Target = PositionBlocks;
    #[inline]
    fn deref(&self) -> &PositionBlocks {
        &self.0.store
    }
}

impl Mesh {
    /// Builds a mesh from a flat cell array (`kind.arity()` vertex ids per
    /// cell). Validates id ranges and per-cell degeneracy and constructs
    /// the adjacency.
    pub fn from_flat(
        kind: CellKind,
        positions: Vec<Point3>,
        cells: Vec<VertexId>,
    ) -> Result<Mesh, MeshError> {
        let arity = kind.arity();
        if !cells.len().is_multiple_of(arity) {
            return Err(MeshError::RaggedCellArray {
                len: cells.len(),
                arity,
            });
        }
        if positions.len() >= VertexId::MAX as usize {
            return Err(MeshError::TooManyVertices);
        }
        let n = positions.len();
        for (ci, cell) in cells.chunks_exact(arity).enumerate() {
            for (li, &v) in cell.iter().enumerate() {
                if v as usize >= n {
                    return Err(MeshError::VertexOutOfRange {
                        cell: ci as CellId,
                        vertex: v,
                        num_vertices: n,
                    });
                }
                if cell[..li].contains(&v) {
                    return Err(MeshError::DegenerateCell {
                        cell: ci as CellId,
                        vertex: v,
                    });
                }
            }
        }
        let num_cells = cells.len() / arity;
        let adjacency = build_adjacency(kind, n, &cells, None);
        Ok(Mesh {
            kind,
            positions,
            cells,
            alive: vec![true; num_cells],
            num_live: num_cells,
            adjacency,
            restructure: None,
            restructure_epoch: 0,
            deform_stamp: 0,
            blocks: RwLock::new(BlockMirror::default()),
        })
    }

    /// Convenience constructor for tetrahedral meshes.
    pub fn from_tets(positions: Vec<Point3>, tets: Vec<[VertexId; 4]>) -> Result<Mesh, MeshError> {
        let flat = tets.into_iter().flatten().collect();
        Mesh::from_flat(CellKind::Tet4, positions, flat)
    }

    /// Convenience constructor for hexahedral meshes.
    pub fn from_hexes(
        positions: Vec<Point3>,
        hexes: Vec<[VertexId; 8]>,
    ) -> Result<Mesh, MeshError> {
        let flat = hexes.into_iter().flatten().collect();
        Mesh::from_flat(CellKind::Hex8, positions, flat)
    }

    /// The polyhedral primitive this mesh is built from.
    #[inline]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Number of live (non-removed) cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.num_live
    }

    /// Total cell slots including tombstones (exclusive upper bound on
    /// valid [`CellId`]s).
    #[inline]
    pub fn cell_capacity(&self) -> usize {
        self.alive.len()
    }

    /// True when cell `c` exists and has not been removed.
    #[inline]
    pub fn is_cell_alive(&self, c: CellId) -> bool {
        (c as usize) < self.alive.len() && self.alive[c as usize]
    }

    /// Vertex ids of cell `c`.
    ///
    /// # Panics
    /// Panics when `c` is out of range (use [`Mesh::is_cell_alive`] to
    /// check liveness; tombstoned cells still return their last vertices).
    #[inline]
    pub fn cell(&self, c: CellId) -> &[VertexId] {
        let a = self.kind.arity();
        &self.cells[c as usize * a..(c as usize + 1) * a]
    }

    /// Iterates `(id, vertices)` over live cells.
    pub fn live_cells(&self) -> impl Iterator<Item = (CellId, &[VertexId])> {
        let a = self.kind.arity();
        self.cells
            .chunks_exact(a)
            .enumerate()
            .filter(move |(i, _)| self.alive[*i])
            .map(|(i, c)| (i as CellId, c))
    }

    /// Current vertex positions.
    #[inline]
    pub fn positions(&self) -> &[Point3] {
        &self.positions
    }

    /// Mutable vertex positions — the simulation's in-place update target.
    /// Writing here is the "mesh deformation" transformation: surface and
    /// adjacency remain valid by construction. Marks the blocked-SoA
    /// mirror stale; the next [`Mesh::position_blocks`] resyncs it.
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Point3] {
        self.deform_stamp += 1;
        &mut self.positions
    }

    /// The blocked-SoA view of the current positions (the crawl hot
    /// path, see [`crate::soa`]). Lazily rebuilt: the first call after a
    /// [`Mesh::positions_mut`] borrow (or a vertex-appending
    /// restructure) pays one O(V) resync under a write lock; every
    /// other call is one uncontended read lock. Always consistent with
    /// [`Mesh::positions`] — mutation requires `&mut Mesh`, which the
    /// returned guard's borrow excludes.
    pub fn position_blocks(&self) -> PositionBlocksRef<'_> {
        // Lock poisoning carries no broken invariant here: the mirror
        // is rebuilt from `positions` below whenever it is stale, so a
        // panicked builder at worst leaves `built_at` unset.
        {
            let guard = self.blocks.read().unwrap_or_else(PoisonError::into_inner);
            if guard.built_at == Some(self.deform_stamp) {
                return PositionBlocksRef(guard);
            }
        }
        {
            let mut guard = self.blocks.write().unwrap_or_else(PoisonError::into_inner);
            // Double-check: a concurrent reader may have rebuilt while
            // we waited for the write lock.
            if guard.built_at != Some(self.deform_stamp) {
                guard.store.rebuild(&self.positions);
                guard.built_at = Some(self.deform_stamp);
            }
        }
        // The stamp cannot advance between the rebuild and this
        // re-acquire: advancing it requires `&mut self`.
        PositionBlocksRef(self.blocks.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point3 {
        self.positions[v as usize]
    }

    /// Sorted neighbour ids of `v` (the adjacency-list pointers of §III-A).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.adjacency.neighbors(v)
    }

    /// The underlying CSR adjacency.
    #[inline]
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// Axis-aligned bounds of the current positions.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// True when `v` belongs to at least one live cell.
    ///
    /// Restructuring can orphan vertices (a removed cell may have been
    /// the last one referencing a vertex); their position slots remain
    /// allocated but they are no longer part of the mesh. Range-query
    /// semantics are defined over *active* vertices — OCTOPUS naturally
    /// never returns orphans (they are unreachable and off the surface),
    /// and ground-truth scans must filter them explicitly.
    ///
    /// Every vertex of a live cell has at least `arity − 1 ≥ 3` adjacency
    /// edges, so zero degree is equivalent to "in no live cell".
    #[inline]
    pub fn is_vertex_active(&self, v: VertexId) -> bool {
        self.adjacency.degree(v) > 0
    }

    /// Extracts the current surface.
    ///
    /// In restructuring mode this reads the maintained per-vertex boundary
    /// counts (O(V)); otherwise it runs the global-face-list extraction
    /// (§IV-E1, O(cells)).
    pub fn surface(&self) -> Result<Surface, MeshError> {
        if let Some(rs) = &self.restructure {
            Ok(Surface::from_membership_with_faces(
                rs.boundary_face_count.iter().map(|&c| c > 0).collect(),
                rs.faces.boundary_faces().count(),
            ))
        } else {
            Surface::extract(
                self.kind,
                self.positions.len(),
                self.live_cells().map(|(_, c)| c),
            )
        }
    }

    /// Enables restructuring mode: builds the persistent global face list
    /// and per-vertex boundary-face counts. Idempotent.
    pub fn enable_restructuring(&mut self) -> Result<(), MeshError> {
        if self.restructure.is_some() {
            return Ok(());
        }
        let faces = FaceTable::build(self.kind, self.live_cells())?;
        let mut boundary_face_count = vec![0u32; self.positions.len()];
        for key in faces.boundary_faces() {
            for &v in key.vertices() {
                boundary_face_count[v as usize] += 1;
            }
        }
        self.restructure = Some(RestructureState {
            faces,
            boundary_face_count,
        });
        Ok(())
    }

    /// True when restructuring mode is active.
    pub fn restructuring_enabled(&self) -> bool {
        self.restructure.is_some()
    }

    /// The mesh's restructure epoch: the number of committed
    /// restructuring operations ([`Mesh::remove_cell`] /
    /// [`Mesh::refine_tet`]) since construction. Deformation
    /// ([`Mesh::positions_mut`]) never advances it, and vertex
    /// relabelling ([`Mesh::permute_vertices`]) carries it over
    /// unchanged — two meshes with equal epochs in the same lineage
    /// have identical connectivity up to the relabelling. Consumers
    /// that cache connectivity-derived state (the Eq.-6 planner
    /// crossover, surface statistics) compare epochs to detect
    /// staleness instead of re-deriving per call.
    #[inline]
    pub fn restructure_epoch(&self) -> u64 {
        self.restructure_epoch
    }

    /// Removes cell `c` (mesh restructuring: "merged" polyhedra reduce the
    /// cell count). Interior faces of the removed cell become boundary;
    /// its boundary faces disappear. Returns the exact surface delta.
    pub fn remove_cell(&mut self, c: CellId) -> Result<SurfaceDelta, MeshError> {
        if !self.is_cell_alive(c) {
            return Err(MeshError::NoSuchCell { cell: c });
        }
        self.apply_restructure(&[c], &[])
    }

    /// Splits tetrahedron `c` into four tetrahedra around its centroid
    /// (mesh restructuring: "split" polyhedra increase the cell count).
    /// Returns the new centroid vertex id and the surface delta (always
    /// empty for this refinement: the centroid is interior and the four
    /// outer faces survive).
    pub fn refine_tet(&mut self, c: CellId) -> Result<(VertexId, SurfaceDelta), MeshError> {
        if self.kind != CellKind::Tet4 {
            return Err(MeshError::WrongCellKind {
                expected: CellKind::Tet4,
                actual: self.kind,
            });
        }
        if !self.is_cell_alive(c) {
            return Err(MeshError::NoSuchCell { cell: c });
        }
        if self.restructure.is_none() {
            return Err(MeshError::RestructuringDisabled);
        }
        let cell: [VertexId; 4] = self.cell(c).try_into().expect("tet arity");
        let centroid = {
            let p: [Point3; 4] = cell.map(|v| self.position(v));
            Point3::new(
                0.25 * (p[0].x + p[1].x + p[2].x + p[3].x),
                0.25 * (p[0].y + p[1].y + p[2].y + p[3].y),
                0.25 * (p[0].z + p[1].z + p[2].z + p[3].z),
            )
        };
        if self.positions.len() + 1 >= VertexId::MAX as usize {
            return Err(MeshError::TooManyVertices);
        }
        let e = self.positions.len() as VertexId;
        self.positions.push(centroid);
        self.deform_stamp += 1; // the SoA mirror must grow a lane
        if let Some(rs) = &mut self.restructure {
            rs.boundary_face_count.push(0);
        }
        let [a, b, cc, d] = cell;
        let new_cells = [[a, b, cc, e], [a, b, d, e], [a, cc, d, e], [b, cc, d, e]];
        let delta = self.apply_restructure(&[c], &new_cells.map(|t| t.to_vec()))?;
        Ok((e, delta))
    }

    /// Transactionally removes `remove` cells and appends `add` cells,
    /// maintaining the face table and boundary counts, and returning the
    /// net surface delta. Rebuilds the adjacency (restructuring is rare;
    /// the paper amortises this cost the same way).
    fn apply_restructure(
        &mut self,
        remove: &[CellId],
        add: &[Vec<VertexId>],
    ) -> Result<SurfaceDelta, MeshError> {
        let rs = self
            .restructure
            .as_mut()
            .ok_or(MeshError::RestructuringDisabled)?;
        let arity = self.kind.arity();

        // Validate additions before mutating anything.
        for cell in add {
            if cell.len() != arity {
                return Err(MeshError::RaggedCellArray {
                    len: cell.len(),
                    arity,
                });
            }
            for (li, &v) in cell.iter().enumerate() {
                if v as usize >= self.positions.len() {
                    return Err(MeshError::VertexOutOfRange {
                        cell: self.alive.len() as CellId,
                        vertex: v,
                        num_vertices: self.positions.len(),
                    });
                }
                if cell[..li].contains(&v) {
                    return Err(MeshError::DegenerateCell {
                        cell: self.alive.len() as CellId,
                        vertex: v,
                    });
                }
            }
        }

        // Record the boundary status of every affected face up front.
        let mut affected: HashMap<FaceKey, bool> = HashMap::new();
        for &c in remove {
            for key in self
                .kind
                .face_keys(&self.cells[c as usize * arity..(c as usize + 1) * arity])
            {
                affected
                    .entry(key)
                    .or_insert_with(|| rs.faces.is_boundary(&key));
            }
        }
        for cell in add {
            for key in self.kind.face_keys(cell) {
                affected
                    .entry(key)
                    .or_insert_with(|| rs.faces.is_boundary(&key));
            }
        }

        // Apply to the face table.
        for &c in remove {
            let cell = &self.cells[c as usize * arity..(c as usize + 1) * arity];
            rs.faces.remove_cell(self.kind, c, cell);
        }
        let first_new_id = self.alive.len() as CellId;
        for (i, cell) in add.iter().enumerate() {
            rs.faces
                .insert_cell(self.kind, first_new_id + i as CellId, cell)?;
        }

        // Diff boundary status → per-vertex counts → surface delta.
        let mut delta = SurfaceDelta::default();
        for (key, was_boundary) in &affected {
            let is_boundary = rs.faces.is_boundary(key);
            if *was_boundary == is_boundary {
                continue;
            }
            for &v in key.vertices() {
                let cnt = &mut rs.boundary_face_count[v as usize];
                if is_boundary {
                    if *cnt == 0 {
                        delta.added.push(v);
                    }
                    *cnt += 1;
                } else {
                    *cnt -= 1;
                    if *cnt == 0 {
                        delta.removed.push(v);
                    }
                }
            }
        }
        delta.added.sort_unstable();
        delta.added.dedup();
        delta.removed.sort_unstable();
        delta.removed.dedup();

        // Commit the cell array changes.
        for &c in remove {
            self.alive[c as usize] = false;
            self.num_live -= 1;
        }
        for cell in add {
            self.cells.extend_from_slice(cell);
            self.alive.push(true);
            self.num_live += 1;
        }

        self.adjacency = build_adjacency(
            self.kind,
            self.positions.len(),
            &self.cells,
            Some(&self.alive),
        );
        self.restructure_epoch += 1;
        Ok(delta)
    }

    /// Returns a mesh with vertices relabelled by `perm`
    /// (vertex `old` becomes `perm[old]`): positions, cells, adjacency and
    /// restructuring state are all remapped. Used by the Hilbert layout
    /// optimisation (§IV-H1).
    ///
    /// # Panics
    /// Panics when `perm` is not a bijection over `0..num_vertices`.
    pub fn permute_vertices(&self, perm: &[VertexId]) -> Mesh {
        let n = self.positions.len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(
                (p as usize) < n && !seen[p as usize],
                "perm is not a bijection"
            );
            seen[p as usize] = true;
        }
        let mut positions = vec![Point3::ORIGIN; n];
        for (old, &new) in perm.iter().enumerate() {
            positions[new as usize] = self.positions[old];
        }
        let cells: Vec<VertexId> = self.cells.iter().map(|&v| perm[v as usize]).collect();
        let adjacency = build_adjacency(self.kind, n, &cells, Some(&self.alive));
        let restructure = self.restructure.as_ref().map(|_| {
            let faces = FaceTable::build(
                self.kind,
                cells
                    .chunks_exact(self.kind.arity())
                    .enumerate()
                    .filter(|(i, _)| self.alive[*i])
                    .map(|(i, c)| (i as CellId, c)),
            )
            .expect("permuted mesh stays manifold");
            let mut boundary_face_count = vec![0u32; n];
            for key in faces.boundary_faces() {
                for &v in key.vertices() {
                    boundary_face_count[v as usize] += 1;
                }
            }
            RestructureState {
                faces,
                boundary_face_count,
            }
        });
        Mesh {
            kind: self.kind,
            positions,
            cells,
            alive: self.alive.clone(),
            num_live: self.num_live,
            adjacency,
            restructure,
            restructure_epoch: self.restructure_epoch,
            deform_stamp: 0,
            blocks: RwLock::new(BlockMirror::default()),
        }
    }

    /// Bytes of heap memory held by the mesh structure (positions, cells,
    /// adjacency, tombstones, restructuring state, and the blocked-SoA
    /// position mirror — alignment padding included). This is the
    /// "dataset size" denominator of the paper's memory-overhead
    /// comparisons: index footprints are reported *relative to* it.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.positions.capacity() * std::mem::size_of::<Point3>()
            + self.cells.capacity() * std::mem::size_of::<VertexId>()
            + self.alive.capacity()
            + self.adjacency.memory_bytes()
            + self
                .blocks
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .store
                .memory_bytes();
        if let Some(rs) = &self.restructure {
            total += rs.faces.memory_bytes()
                + rs.boundary_face_count.capacity() * std::mem::size_of::<u32>();
        }
        total
    }
}

/// Builds CSR adjacency from the flat cell array (live cells only).
fn build_adjacency(kind: CellKind, n: usize, cells: &[VertexId], alive: Option<&[bool]>) -> Csr {
    let arity = kind.arity();
    let edges = cells
        .chunks_exact(arity)
        .enumerate()
        .filter(move |(i, _)| alive.is_none_or(|a| a[*i]))
        .flat_map(move |(_, cell)| kind.edges(cell));
    Csr::from_undirected_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f32, y: f32, z: f32) -> Point3 {
        Point3::new(x, y, z)
    }

    /// Two tets glued on face (1,2,3).
    fn two_tet_mesh() -> Mesh {
        let positions = vec![
            p(0.0, 0.0, 0.0),
            p(1.0, 0.0, 0.0),
            p(0.0, 1.0, 0.0),
            p(0.0, 0.0, 1.0),
            p(1.0, 1.0, 1.0),
        ];
        Mesh::from_tets(positions, vec![[0, 1, 2, 3], [4, 1, 2, 3]]).unwrap()
    }

    #[test]
    fn construction_validates_ids() {
        let err = Mesh::from_tets(vec![p(0.0, 0.0, 0.0)], vec![[0, 1, 2, 3]]).unwrap_err();
        assert!(matches!(err, MeshError::VertexOutOfRange { vertex: 1, .. }));
    }

    #[test]
    fn construction_rejects_degenerate_cells() {
        let positions = vec![p(0.0, 0.0, 0.0); 4];
        let err = Mesh::from_tets(positions, vec![[0, 1, 2, 2]]).unwrap_err();
        assert!(matches!(err, MeshError::DegenerateCell { vertex: 2, .. }));
    }

    #[test]
    fn construction_rejects_ragged_arrays() {
        let err =
            Mesh::from_flat(CellKind::Tet4, vec![p(0.0, 0.0, 0.0); 4], vec![0, 1, 2]).unwrap_err();
        assert!(matches!(
            err,
            MeshError::RaggedCellArray { len: 3, arity: 4 }
        ));
    }

    #[test]
    fn adjacency_reflects_shared_face() {
        let m = two_tet_mesh();
        // 0 and 4 are not connected; both connect to 1, 2, 3.
        assert_eq!(m.neighbors(0), &[1, 2, 3]);
        assert_eq!(m.neighbors(4), &[1, 2, 3]);
        assert_eq!(m.neighbors(1), &[0, 2, 3, 4]);
    }

    #[test]
    fn deformation_keeps_surface_and_adjacency() {
        let mut m = two_tet_mesh();
        let before = m.surface().unwrap().vertices().to_vec();
        for pos in m.positions_mut() {
            *pos += octopus_geom::Vec3::new(5.0, -2.0, 0.5);
        }
        assert_eq!(m.surface().unwrap().vertices(), &before[..]);
        assert_eq!(m.neighbors(1), &[0, 2, 3, 4]);
    }

    #[test]
    fn remove_cell_exposes_interior_face_no_surface_change_when_all_surface() {
        let mut m = two_tet_mesh();
        m.enable_restructuring().unwrap();
        // All 5 vertices are already on the surface, so deleting a tet
        // cannot *add* surface vertices; vertex 0 loses all its faces and
        // leaves the surface (it becomes disconnected from live cells).
        let delta = m.remove_cell(0).unwrap();
        assert!(delta.added.is_empty());
        assert_eq!(delta.removed, vec![0]);
        assert_eq!(m.num_cells(), 1);
        assert!(!m.is_cell_alive(0));
        // Adjacency rebuilt: vertex 0 now isolated.
        assert_eq!(m.neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn remove_cell_requires_restructuring_mode() {
        let mut m = two_tet_mesh();
        assert!(matches!(
            m.remove_cell(0),
            Err(MeshError::RestructuringDisabled)
        ));
    }

    #[test]
    fn remove_dead_cell_errors() {
        let mut m = two_tet_mesh();
        m.enable_restructuring().unwrap();
        m.remove_cell(0).unwrap();
        assert!(matches!(
            m.remove_cell(0),
            Err(MeshError::NoSuchCell { cell: 0 })
        ));
        assert!(matches!(
            m.remove_cell(99),
            Err(MeshError::NoSuchCell { cell: 99 })
        ));
    }

    #[test]
    fn refine_tet_adds_interior_vertex_without_surface_change() {
        let mut m = two_tet_mesh();
        m.enable_restructuring().unwrap();
        let (e, delta) = m.refine_tet(0).unwrap();
        assert_eq!(e, 5);
        assert!(
            delta.is_empty(),
            "centroid refinement never changes the surface: {delta:?}"
        );
        assert_eq!(m.num_cells(), 5); // 2 - 1 + 4
        assert_eq!(m.num_vertices(), 6);
        // Centroid connects to all four corners of the refined tet.
        assert_eq!(m.neighbors(5), &[0, 1, 2, 3]);
        // Surface recomputed from scratch agrees: centroid interior.
        let s = m.surface().unwrap();
        assert!(!s.contains(5));
        // Delta-maintained membership matches a from-scratch extraction.
        let fresh = Surface::extract(CellKind::Tet4, 6, m.live_cells().map(|(_, c)| c)).unwrap();
        assert_eq!(s.vertices(), fresh.vertices());
    }

    #[test]
    fn refine_is_tet_only() {
        let positions = (0..8)
            .map(|i| p((i & 1) as f32, ((i >> 1) & 1) as f32, ((i >> 2) & 1) as f32))
            .collect();
        let mut m = Mesh::from_hexes(positions, vec![[0, 1, 3, 2, 4, 5, 7, 6]]).unwrap();
        m.enable_restructuring().unwrap();
        assert!(matches!(
            m.refine_tet(0),
            Err(MeshError::WrongCellKind { .. })
        ));
    }

    #[test]
    fn delta_matches_full_recomputation_over_op_sequence() {
        // Build a 3-tet strip, then remove/refine in sequence and compare
        // the maintained surface with a from-scratch extraction each time.
        let positions = vec![
            p(0.0, 0.0, 0.0),
            p(1.0, 0.0, 0.0),
            p(0.0, 1.0, 0.0),
            p(0.0, 0.0, 1.0),
            p(1.0, 1.0, 1.0),
            p(2.0, 1.0, 1.0),
        ];
        let mut m =
            Mesh::from_tets(positions, vec![[0, 1, 2, 3], [4, 1, 2, 3], [5, 4, 2, 3]]).unwrap();
        m.enable_restructuring().unwrap();
        type Op = Box<dyn Fn(&mut Mesh)>;
        let ops: Vec<Op> = vec![
            Box::new(|m: &mut Mesh| {
                m.refine_tet(1).unwrap();
            }),
            Box::new(|m: &mut Mesh| {
                m.remove_cell(0).unwrap();
            }),
            Box::new(|m: &mut Mesh| {
                m.remove_cell(2).unwrap();
            }),
        ];
        for op in ops {
            op(&mut m);
            let maintained = m.surface().unwrap();
            let fresh =
                Surface::extract(m.kind(), m.num_vertices(), m.live_cells().map(|(_, c)| c))
                    .unwrap();
            assert_eq!(maintained.vertices(), fresh.vertices());
        }
    }

    #[test]
    fn permutation_relabels_consistently() {
        let m = two_tet_mesh();
        // Reverse the ids.
        let perm: Vec<u32> = (0..5).rev().collect();
        let q = m.permute_vertices(&perm);
        assert_eq!(q.position(4), m.position(0));
        assert_eq!(q.position(0), m.position(4));
        // Old edge (0,1) becomes (4,3).
        assert!(q.adjacency().has_edge(4, 3));
        // Surfaces match under relabelling.
        let s_old = m.surface().unwrap();
        let s_new = q.surface().unwrap();
        for v in 0..5u32 {
            assert_eq!(s_old.contains(v), s_new.contains(perm[v as usize]));
        }
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn permutation_must_be_bijective() {
        let m = two_tet_mesh();
        m.permute_vertices(&[0, 0, 1, 2, 3]);
    }

    #[test]
    fn live_cells_skips_tombstones() {
        let mut m = two_tet_mesh();
        m.enable_restructuring().unwrap();
        m.remove_cell(1).unwrap();
        let ids: Vec<CellId> = m.live_cells().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0]);
        assert_eq!(m.cell_capacity(), 2);
    }

    #[test]
    fn restructure_epoch_counts_ops_and_ignores_deformation() {
        let mut m = two_tet_mesh();
        assert_eq!(m.restructure_epoch(), 0);
        // Deformation: no epoch change.
        for pos in m.positions_mut() {
            *pos += octopus_geom::Vec3::new(0.1, 0.0, 0.0);
        }
        assert_eq!(m.restructure_epoch(), 0);
        m.enable_restructuring().unwrap();
        assert_eq!(m.restructure_epoch(), 0, "enabling the mode is not an op");
        m.refine_tet(0).unwrap();
        assert_eq!(m.restructure_epoch(), 1);
        m.remove_cell(1).unwrap();
        assert_eq!(m.restructure_epoch(), 2);
        // Failed ops leave the epoch untouched.
        assert!(m.remove_cell(1).is_err());
        assert_eq!(m.restructure_epoch(), 2);
        // Relabelling carries the epoch over (same connectivity lineage).
        let n = m.num_vertices() as u32;
        let perm: Vec<u32> = (0..n).rev().collect();
        assert_eq!(m.permute_vertices(&perm).restructure_epoch(), 2);
    }

    #[test]
    fn memory_accounting_grows_with_restructuring_mode() {
        let mut m = two_tet_mesh();
        let base = m.memory_bytes();
        m.enable_restructuring().unwrap();
        assert!(m.memory_bytes() > base);
    }

    #[test]
    fn bounding_box_tracks_positions() {
        let mut m = two_tet_mesh();
        let b0 = m.bounding_box();
        assert_eq!(b0.max, p(1.0, 1.0, 1.0));
        m.positions_mut()[4] = p(10.0, 0.0, 0.0);
        assert_eq!(m.bounding_box().max.x, 10.0);
    }

    #[test]
    fn position_blocks_mirror_the_aos_store() {
        let m = two_tet_mesh();
        let blocks = m.position_blocks();
        assert_eq!(blocks.len(), m.num_vertices());
        for (v, pos) in m.positions().iter().enumerate() {
            assert_eq!(blocks.get(v), *pos);
        }
    }

    #[test]
    fn position_blocks_resync_after_deformation() {
        let mut m = two_tet_mesh();
        assert_eq!(m.position_blocks().get(4), p(1.0, 1.0, 1.0));
        m.positions_mut()[4] = p(7.0, 8.0, 9.0);
        assert_eq!(m.position_blocks().get(4), p(7.0, 8.0, 9.0));
    }

    #[test]
    fn position_blocks_resync_after_refine() {
        let mut m = two_tet_mesh();
        m.enable_restructuring().unwrap();
        let before = m.num_vertices();
        let _ = m.position_blocks(); // build the mirror at the old length
        m.refine_tet(0).unwrap();
        let blocks = m.position_blocks();
        assert_eq!(blocks.len(), before + 1);
        assert_eq!(blocks.get(before), m.positions()[before]);
    }

    #[test]
    fn clone_rebuilds_its_own_mirror() {
        let mut m = two_tet_mesh();
        let _ = m.position_blocks();
        let c = m.clone();
        m.positions_mut()[0] = p(-5.0, 0.0, 0.0);
        assert_eq!(c.position_blocks().get(0), p(0.0, 0.0, 0.0));
        assert_eq!(m.position_blocks().get(0), p(-5.0, 0.0, 0.0));
    }

    #[test]
    fn memory_bytes_includes_block_mirror_after_build() {
        let m = two_tet_mesh();
        let before = m.memory_bytes();
        let _ = m.position_blocks();
        assert!(m.memory_bytes() > before, "mirror padding must be counted");
    }
}
