//! Dataset characterisation, mirroring the paper's Fig. 4 / 8 / 14 tables.

use crate::{Mesh, MeshError};

/// Summary statistics of a mesh dataset.
///
/// The columns match the paper's dataset tables: size, cell count, vertex
/// count, mesh degree `M` (average number of edges per vertex) and
/// surface-to-volume ratio `S` (surface vertices ÷ total vertices).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeshStats {
    /// Heap bytes held by the mesh (positions + cells + adjacency).
    pub memory_bytes: usize,
    /// Number of live cells (tetrahedra / hexahedra).
    pub num_cells: usize,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Average vertex degree `M` — the crawl-cost factor of Eq. 2.
    pub mesh_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Surface-to-volume ratio `S` — the probe-cost factor of Eq. 1.
    pub surface_ratio: f64,
    /// Number of surface vertices.
    pub surface_vertices: usize,
    /// Number of connected components (2 for the two-neuron datasets).
    pub components: usize,
}

impl MeshStats {
    /// Computes all statistics (extracts the surface; O(cells)).
    pub fn compute(mesh: &Mesh) -> Result<MeshStats, MeshError> {
        let surface = mesh.surface()?;
        let (_, components) = mesh.adjacency().connected_components();
        Ok(MeshStats {
            memory_bytes: mesh.memory_bytes(),
            num_cells: mesh.num_cells(),
            num_vertices: mesh.num_vertices(),
            mesh_degree: mesh.adjacency().average_degree(),
            max_degree: mesh.adjacency().max_degree(),
            surface_ratio: surface.ratio(),
            surface_vertices: surface.len(),
            components,
        })
    }

    /// Memory in mebibytes, for table printing.
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl std::fmt::Display for MeshStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} MiB | {} cells | {} vertices | degree {:.2} | S:V {:.3} | {} component(s)",
            self.memory_mib(),
            self.num_cells,
            self.num_vertices,
            self.mesh_degree,
            self.surface_ratio,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;

    #[test]
    fn stats_of_single_tet() {
        let positions = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        let m = Mesh::from_tets(positions, vec![[0, 1, 2, 3]]).unwrap();
        let s = MeshStats::compute(&m).unwrap();
        assert_eq!(s.num_cells, 1);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.mesh_degree, 3.0);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.surface_ratio, 1.0);
        assert_eq!(s.surface_vertices, 4);
        assert_eq!(s.components, 1);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn disjoint_meshes_report_components() {
        let positions = (0..8)
            .map(|i| Point3::new(i as f32, (i % 2) as f32, (i % 3) as f32))
            .collect();
        let m = Mesh::from_tets(positions, vec![[0, 1, 2, 3], [4, 5, 6, 7]]).unwrap();
        let s = MeshStats::compute(&m).unwrap();
        assert_eq!(s.components, 2);
    }

    #[test]
    fn display_contains_key_fields() {
        let positions = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        let m = Mesh::from_tets(positions, vec![[0, 1, 2, 3]]).unwrap();
        let s = MeshStats::compute(&m).unwrap().to_string();
        assert!(s.contains("1 cells") && s.contains("4 vertices"));
    }
}
