//! Cell (polyhedron) kinds and their face / edge topology.
//!
//! The paper (§III-A, Fig. 1a/b) categorises meshes by polyhedral
//! primitive; tetrahedra and hexahedra are the two primitives used by its
//! datasets. Both are supported: every algorithm downstream only consumes
//! the face and edge enumerations defined here.

use octopus_geom::VertexId;

/// The polyhedral primitive a mesh is built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// 4-vertex tetrahedron (4 triangular faces, 6 edges).
    Tet4,
    /// 8-vertex hexahedron (6 quadrilateral faces, 12 edges), VTK vertex
    /// numbering: vertices 0–3 form the bottom quad, 4–7 the top quad.
    Hex8,
}

/// Local vertex indices of each tetrahedron face.
const TET_FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]];

/// Local vertex indices of each tetrahedron edge.
const TET_EDGES: [[usize; 2]; 6] = [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]];

/// Local vertex indices of each hexahedron face (VTK numbering).
const HEX_FACES: [[usize; 4]; 6] = [
    [0, 3, 2, 1], // bottom
    [4, 5, 6, 7], // top
    [0, 1, 5, 4],
    [1, 2, 6, 5],
    [2, 3, 7, 6],
    [3, 0, 4, 7],
];

/// Local vertex indices of each hexahedron edge.
const HEX_EDGES: [[usize; 2]; 12] = [
    [0, 1],
    [1, 2],
    [2, 3],
    [3, 0],
    [4, 5],
    [5, 6],
    [6, 7],
    [7, 4],
    [0, 4],
    [1, 5],
    [2, 6],
    [3, 7],
];

impl CellKind {
    /// Vertices per cell.
    #[inline]
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Tet4 => 4,
            CellKind::Hex8 => 8,
        }
    }

    /// Faces per cell.
    #[inline]
    pub const fn faces_per_cell(self) -> usize {
        match self {
            CellKind::Tet4 => 4,
            CellKind::Hex8 => 6,
        }
    }

    /// Vertices per face (3 for tets, 4 for hexes).
    #[inline]
    pub const fn face_arity(self) -> usize {
        match self {
            CellKind::Tet4 => 3,
            CellKind::Hex8 => 4,
        }
    }

    /// Edges per cell.
    #[inline]
    pub const fn edges_per_cell(self) -> usize {
        match self {
            CellKind::Tet4 => 6,
            CellKind::Hex8 => 12,
        }
    }

    /// Human-readable name of the primitive.
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Tet4 => "tetrahedron",
            CellKind::Hex8 => "hexahedron",
        }
    }

    /// Writes the canonical [`FaceKey`] of face `face_idx` of the cell
    /// whose global vertex ids are `cell`.
    ///
    /// # Panics
    /// Panics when `cell.len() != self.arity()` or `face_idx` is out of
    /// range.
    #[inline]
    pub fn face_key(self, cell: &[VertexId], face_idx: usize) -> FaceKey {
        debug_assert_eq!(cell.len(), self.arity());
        match self {
            CellKind::Tet4 => {
                let f = TET_FACES[face_idx];
                FaceKey::tri(cell[f[0]], cell[f[1]], cell[f[2]])
            }
            CellKind::Hex8 => {
                let f = HEX_FACES[face_idx];
                FaceKey::quad(cell[f[0]], cell[f[1]], cell[f[2]], cell[f[3]])
            }
        }
    }

    /// Iterates the canonical keys of all faces of `cell`.
    #[inline]
    pub fn face_keys<'a>(self, cell: &'a [VertexId]) -> impl Iterator<Item = FaceKey> + 'a {
        (0..self.faces_per_cell()).map(move |i| self.face_key(cell, i))
    }

    /// Iterates the (unordered) vertex-id pairs forming the cell's edges.
    #[inline]
    pub fn edges<'a>(
        self,
        cell: &'a [VertexId],
    ) -> impl Iterator<Item = (VertexId, VertexId)> + 'a {
        let table: &'static [[usize; 2]] = match self {
            CellKind::Tet4 => &TET_EDGES,
            CellKind::Hex8 => &HEX_EDGES,
        };
        table.iter().map(move |e| (cell[e[0]], cell[e[1]]))
    }
}

/// Canonical (orientation-independent) identifier of a polyhedral face.
///
/// Triangular faces store their vertex ids sorted ascending with a
/// `u32::MAX` sentinel in the fourth slot; quadrilateral faces sort all
/// four ids. Two cells share a face iff they produce equal keys — the
/// property the global-face-list surface extraction (§IV-E1) relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaceKey(pub [VertexId; 4]);

impl FaceKey {
    /// Sentinel marking the unused slot of a triangle key.
    pub const NONE: VertexId = VertexId::MAX;

    /// Canonical key for a triangle.
    #[inline]
    pub fn tri(a: VertexId, b: VertexId, c: VertexId) -> FaceKey {
        debug_assert!(a != b && b != c && a != c, "degenerate triangle face");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let key = if c < lo {
            [c, lo, hi, Self::NONE]
        } else if c < hi {
            [lo, c, hi, Self::NONE]
        } else {
            [lo, hi, c, Self::NONE]
        };
        FaceKey(key)
    }

    /// Canonical key for a quadrilateral.
    #[inline]
    pub fn quad(a: VertexId, b: VertexId, c: VertexId, d: VertexId) -> FaceKey {
        let mut v = [a, b, c, d];
        v.sort_unstable();
        debug_assert!(
            v[0] != v[1] && v[1] != v[2] && v[2] != v[3],
            "degenerate quad face"
        );
        FaceKey(v)
    }

    /// Number of vertices on the face (3 or 4).
    #[inline]
    pub fn arity(&self) -> usize {
        if self.0[3] == Self::NONE {
            3
        } else {
            4
        }
    }

    /// The face's vertex ids (3 or 4 of them).
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.0[..self.arity()]
    }

    /// True when `v` lies on this face.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices().contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tet_face_keys_are_orientation_independent() {
        assert_eq!(FaceKey::tri(3, 1, 2), FaceKey::tri(2, 3, 1));
        assert_eq!(FaceKey::tri(9, 5, 7).0, [5, 7, 9, FaceKey::NONE]);
    }

    #[test]
    fn quad_face_keys_sort_all_vertices() {
        assert_eq!(FaceKey::quad(8, 2, 6, 4).0, [2, 4, 6, 8]);
        assert_eq!(FaceKey::quad(1, 2, 3, 4), FaceKey::quad(4, 3, 2, 1));
    }

    #[test]
    fn face_key_arity_and_vertices() {
        let t = FaceKey::tri(1, 2, 3);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.vertices(), &[1, 2, 3]);
        let q = FaceKey::quad(1, 2, 3, 4);
        assert_eq!(q.arity(), 4);
        assert_eq!(q.vertices(), &[1, 2, 3, 4]);
        assert!(t.contains_vertex(2));
        assert!(!t.contains_vertex(4));
    }

    #[test]
    fn tet_has_four_distinct_faces_covering_all_triples() {
        let cell = [10, 11, 12, 13];
        let keys: Vec<FaceKey> = CellKind::Tet4.face_keys(&cell).collect();
        assert_eq!(keys.len(), 4);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "tet faces must be distinct");
        // Every 3-subset of the cell must appear exactly once.
        for omit in 0..4 {
            let tri: Vec<u32> = (0..4).filter(|&i| i != omit).map(|i| cell[i]).collect();
            let key = FaceKey::tri(tri[0], tri[1], tri[2]);
            assert!(keys.contains(&key), "missing face {key:?}");
        }
    }

    #[test]
    fn hex_has_six_distinct_faces_and_each_vertex_on_three() {
        let cell: Vec<u32> = (0..8).collect();
        let keys: Vec<FaceKey> = CellKind::Hex8.face_keys(&cell).collect();
        assert_eq!(keys.len(), 6);
        let mut sorted = keys.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        for v in 0..8u32 {
            let on = keys.iter().filter(|k| k.contains_vertex(v)).count();
            assert_eq!(on, 3, "hex vertex {v} must lie on exactly 3 faces");
        }
    }

    #[test]
    fn tet_edges_cover_all_pairs() {
        let cell = [5, 6, 7, 8];
        let edges: Vec<(u32, u32)> = CellKind::Tet4.edges(&cell).collect();
        assert_eq!(edges.len(), 6);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let found = edges
                    .iter()
                    .any(|&(a, b)| (a, b) == (cell[i], cell[j]) || (b, a) == (cell[i], cell[j]));
                assert!(found, "missing edge ({}, {})", cell[i], cell[j]);
            }
        }
    }

    #[test]
    fn hex_edges_have_each_vertex_with_degree_three() {
        let cell: Vec<u32> = (0..8).collect();
        let mut deg = [0usize; 8];
        for (a, b) in CellKind::Hex8.edges(&cell) {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        assert!(
            deg.iter().all(|&d| d == 3),
            "cube vertices have degree 3: {deg:?}"
        );
    }

    #[test]
    fn arity_tables() {
        assert_eq!(CellKind::Tet4.arity(), 4);
        assert_eq!(CellKind::Hex8.arity(), 8);
        assert_eq!(CellKind::Tet4.faces_per_cell(), 4);
        assert_eq!(CellKind::Hex8.faces_per_cell(), 6);
        assert_eq!(CellKind::Tet4.face_arity(), 3);
        assert_eq!(CellKind::Hex8.face_arity(), 4);
        assert_eq!(CellKind::Tet4.edges_per_cell(), 6);
        assert_eq!(CellKind::Hex8.edges_per_cell(), 12);
    }
}
