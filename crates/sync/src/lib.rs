//! Synchronisation facade for the octopus concurrency protocols.
//!
//! Modules that implement cross-thread protocols (the telemetry shard
//! registry, the result recycler, the snapshot-ring ledger, the
//! admission queue) import their sync primitives from this crate
//! instead of `std::sync` — `xtask lint` enforces it. In ordinary
//! builds everything here **is** the `std::sync` type (zero-cost
//! re-export). Under `RUSTFLAGS="--cfg octopus_model"` the same names
//! resolve to the vendored loom doubles, so the `model_*` test suites
//! can exhaustively explore the protocols' interleavings.
//!
//! The facade deliberately exposes only the subset the shimmed modules
//! use: `Mutex`/`Condvar`/`Arc`, the atomic integers + bool, and
//! `thread::{spawn, yield_now}` for the model suites themselves.

#[cfg(not(octopus_model))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError};

#[cfg(not(octopus_model))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(octopus_model))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(octopus_model)]
pub use loom::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError};

#[cfg(octopus_model)]
pub mod atomic {
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(octopus_model)]
pub mod thread {
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` under the deterministic interleaving explorer when built
/// with `--cfg octopus_model`; simply runs it once otherwise, so a
/// suite accidentally executed without the cfg still exercises the
/// code (single-schedule) instead of silently passing an empty test.
pub fn model<F: Fn() + 'static>(f: F) {
    #[cfg(octopus_model)]
    loom::model(f);
    #[cfg(not(octopus_model))]
    f();
}
