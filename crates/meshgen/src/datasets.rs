//! Dataset catalog mirroring the paper's evaluation datasets.
//!
//! Three families, one per evaluation section:
//!
//! * [`neuron`] — the five neuroscience detail levels of **Fig. 4**
//!   (non-convex branching arbors, two disjoint cells);
//! * [`basin`] — the two convex earthquake meshes of **Fig. 8** (SF2 and
//!   SF1; solid boxes whose surface-to-volume ratios 0.16 / 0.09 match
//!   the paper exactly);
//! * [`animation`] — the three deforming-mesh bodies of **Fig. 14**.
//!
//! Every generator takes a `scale` multiplier on the linear voxel
//! resolution. `scale = 1.0` targets laptop-size meshes (10⁴–10⁶ tets).
//! Because the mesh surface grows ~quadratically while volume grows
//! cubically, the surface-to-volume ratio of the neuron and animation
//! meshes is `S ∝ V^(-1/3)`: at laptop vertex counts it is inherently
//! ~5–10× larger than at the paper's billion-tet scale. `EXPERIMENTS.md`
//! quantifies the effect through the paper's own Eq. 5.

use crate::masks::{ArborParams, Blob, CapsuleTree};
use crate::tet::tetrahedralize;
use crate::voxel::VoxelRegion;
use octopus_geom::{Aabb, Point3, Vec3};
use octopus_mesh::{Mesh, MeshError};

/// The five neuroscience mesh detail levels of Fig. 4, ordered by
/// increasing detail (the paper's 0.13 → 1.32 billion-tetrahedra rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NeuroLevel {
    /// Fig. 4 row 1 — 0.13 G tets, S:V 0.07 in the paper.
    L1,
    /// Fig. 4 row 2 — 0.17 G tets, S:V 0.06.
    L2,
    /// Fig. 4 row 3 — 0.26 G tets, S:V 0.05 (the sensitivity-analysis
    /// default).
    L3,
    /// Fig. 4 row 4 — 0.52 G tets, S:V 0.04.
    L4,
    /// Fig. 4 row 5 — 1.32 G tets, S:V 0.03 (the benchmark default).
    L5,
}

impl NeuroLevel {
    /// All levels in increasing detail order.
    pub const ALL: [NeuroLevel; 5] = [
        NeuroLevel::L1,
        NeuroLevel::L2,
        NeuroLevel::L3,
        NeuroLevel::L4,
        NeuroLevel::L5,
    ];

    /// Linear resolution multiplier: cube root of the paper's
    /// tetrahedra-count ratios (0.13 : 0.17 : 0.26 : 0.52 : 1.32).
    fn linear_factor(self) -> f32 {
        match self {
            NeuroLevel::L1 => 1.0,
            NeuroLevel::L2 => 1.094,
            NeuroLevel::L3 => 1.26,
            NeuroLevel::L4 => 1.587,
            NeuroLevel::L5 => 2.166,
        }
    }

    /// The paper's tetrahedra count for this level, in billions (Fig. 4).
    pub fn paper_tets_billions(self) -> f64 {
        match self {
            NeuroLevel::L1 => 0.13,
            NeuroLevel::L2 => 0.17,
            NeuroLevel::L3 => 0.26,
            NeuroLevel::L4 => 0.52,
            NeuroLevel::L5 => 1.32,
        }
    }

    /// The paper's surface-to-volume ratio for this level (Fig. 4).
    pub fn paper_surface_ratio(self) -> f64 {
        match self {
            NeuroLevel::L1 => 0.07,
            NeuroLevel::L2 => 0.06,
            NeuroLevel::L3 => 0.05,
            NeuroLevel::L4 => 0.04,
            NeuroLevel::L5 => 0.03,
        }
    }

    /// Display label matching Fig. 4's x-axis (tets in billions).
    pub fn label(self) -> &'static str {
        match self {
            NeuroLevel::L1 => "0.13",
            NeuroLevel::L2 => "0.17",
            NeuroLevel::L3 => "0.26",
            NeuroLevel::L4 => "0.52",
            NeuroLevel::L5 => "1.32",
        }
    }
}

/// Builds the two-neuron arbors used by every neuro level (the same
/// geometry at all levels; only the sampling resolution changes, exactly
/// like refining a real mesh model).
fn neuron_arbors() -> [CapsuleTree; 2] {
    // Trunk radius is deliberately thick: the surface-to-volume ratio of
    // a tube is ~4/diameter (in voxels), and the paper's regime needs
    // S ≲ 0.2 for the surface probe to pay off. Thin arbors at laptop
    // resolution would be almost all surface (S ≈ 0.5+).
    let params = ArborParams {
        depth: 4,
        branching: 2,
        segment_len: 0.23,
        radius: 0.12,
        length_decay: 0.82,
        radius_decay: 0.86,
    };
    let a = CapsuleTree::grow(
        Point3::new(0.26, 0.14, 0.5),
        Vec3::new(0.1, 1.0, 0.05),
        &params,
        NEURON_SEED_A,
    );
    let b = CapsuleTree::grow(
        Point3::new(0.74, 0.86, 0.5),
        Vec3::new(-0.1, -1.0, -0.05),
        &params,
        NEURON_SEED_B,
    );
    [a, b]
}

/// Fixed arbor seeds: the *same* two cells at every detail level.
const NEURON_SEED_A: u64 = 0xA12B_33C4;
const NEURON_SEED_B: u64 = 0xB45D_77E9;

/// Generates the two-neuron mesh for a Fig. 4 detail level.
///
/// The two arbors are confined to the `x < 0.46` / `x > 0.54` half-spaces
/// (the gap spans several voxels at every level) so the mesh always has
/// ≥ 2 connected components — the paper's "two neuron cells" — which is
/// what forces OCTOPUS to crawl from *every* surface start vertex.
pub fn neuron(level: NeuroLevel, scale: f32) -> Result<Mesh, MeshError> {
    assert!(scale > 0.0, "scale must be positive");
    let [tree_a, tree_b] = neuron_arbors();
    let base = 44.0;
    let res = ((base * level.linear_factor() * scale).round() as usize).max(8);
    let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
    let region = VoxelRegion::from_fn(&bounds, res, res, res, |p| {
        (p.x < 0.46 && tree_a.contains(p)) || (p.x > 0.54 && tree_b.contains(p))
    });
    tetrahedralize(&region)
}

/// The two convex earthquake-basin meshes of Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasinResolution {
    /// Coarse mesh: 64 MB, S:V 0.16 in the paper.
    Sf2,
    /// Fine mesh: 371 MB, S:V 0.09 in the paper.
    Sf1,
}

impl BasinResolution {
    /// Both resolutions, coarse first (the paper's Fig. 9 order).
    pub const ALL: [BasinResolution; 2] = [BasinResolution::Sf2, BasinResolution::Sf1];

    /// Grid resolution chosen so that the surface-to-volume ratio
    /// matches the paper's Fig. 8 exactly. The basin is a `2n × n × 2n`
    /// box, whose lattice has `≈ 4n³` points of which `≈ 16n²` lie on the
    /// shell, giving `S ≈ 4/n`.
    fn grid_n(self, scale: f32) -> usize {
        let n = match self {
            BasinResolution::Sf2 => 25.0, // S ≈ 4/25 = 0.16
            BasinResolution::Sf1 => 44.0, // S ≈ 4/44 = 0.091
        };
        ((n * scale).round() as usize).max(4)
    }

    /// The paper's surface-to-volume ratio (Fig. 8).
    pub fn paper_surface_ratio(self) -> f64 {
        match self {
            BasinResolution::Sf2 => 0.16,
            BasinResolution::Sf1 => 0.09,
        }
    }

    /// Dataset label.
    pub fn label(self) -> &'static str {
        match self {
            BasinResolution::Sf2 => "SF2",
            BasinResolution::Sf1 => "SF1",
        }
    }
}

/// Generates a convex earthquake-basin mesh (a solid box, like the LA
/// basin volume of the Archimedes simulations — convexity is the property
/// OCTOPUS-CON relies on, §IV-F).
pub fn basin(res: BasinResolution, scale: f32) -> Result<Mesh, MeshError> {
    assert!(scale > 0.0, "scale must be positive");
    let n = res.grid_n(scale);
    // Flat basin: x:y:z = 2:1:2 in paper-like proportions; the lattice
    // resolution n applies along y (the depth axis).
    let bounds = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 1.0, 2.0));
    let region = VoxelRegion::solid_box(&bounds, 2 * n, n, 2 * n);
    tetrahedralize(&region)
}

/// The three deforming-mesh animation sequences of Fig. 14.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnimationKind {
    /// Galloping quadruped — 48 frames, S:V 0.023 in the paper.
    HorseGallop,
    /// Facial expression — 9 frames, S:V 0.010 (most compact shape).
    FacialExpression,
    /// Compressing quadruped — 53 frames, S:V 0.019.
    CamelCompress,
}

impl AnimationKind {
    /// All sequences in the paper's Fig. 14 order.
    pub const ALL: [AnimationKind; 3] = [
        AnimationKind::HorseGallop,
        AnimationKind::FacialExpression,
        AnimationKind::CamelCompress,
    ];

    /// Number of frames (time steps) in the sequence (Fig. 14).
    pub fn time_steps(self) -> usize {
        match self {
            AnimationKind::HorseGallop => 48,
            AnimationKind::FacialExpression => 9,
            AnimationKind::CamelCompress => 53,
        }
    }

    /// The paper's surface-to-volume ratio (Fig. 14).
    pub fn paper_surface_ratio(self) -> f64 {
        match self {
            AnimationKind::HorseGallop => 0.023,
            AnimationKind::FacialExpression => 0.010,
            AnimationKind::CamelCompress => 0.019,
        }
    }

    /// Dataset label.
    pub fn label(self) -> &'static str {
        match self {
            AnimationKind::HorseGallop => "Horse Gallop",
            AnimationKind::FacialExpression => "Facial Expression",
            AnimationKind::CamelCompress => "Camel Compress",
        }
    }

    /// Linear voxel resolution at `scale = 1.0`, ordered so the relative
    /// dataset sizes and S:V ordering of Fig. 14 are preserved
    /// (facial is biggest & most compact; horse is smallest).
    fn resolution(self, scale: f32) -> usize {
        let base = match self {
            AnimationKind::HorseGallop => 52.0,
            AnimationKind::FacialExpression => 76.0,
            AnimationKind::CamelCompress => 62.0,
        };
        ((base * scale).round() as usize).max(8)
    }
}

/// Generates the rest-pose volumetric body for an animation sequence.
/// Per-frame deformation fields live in `octopus-sim`.
pub fn animation(kind: AnimationKind, scale: f32) -> Result<Mesh, MeshError> {
    assert!(scale > 0.0, "scale must be positive");
    let res = kind.resolution(scale);
    match kind {
        AnimationKind::HorseGallop => {
            let bounds = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 1.0, 1.0));
            let blob = Blob::quadruped(&bounds, 0x0905);
            let region = VoxelRegion::from_fn(&bounds, 2 * res, res, res, |p| blob.contains(p));
            tetrahedralize(&region)
        }
        AnimationKind::CamelCompress => {
            let bounds = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 1.0, 1.0));
            let blob = Blob::quadruped(&bounds, 0x0c43);
            let region = VoxelRegion::from_fn(&bounds, 2 * res, res, res, |p| blob.contains(p));
            tetrahedralize(&region)
        }
        AnimationKind::FacialExpression => {
            let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
            let blob = Blob::head(&bounds, 0xFACE);
            let region = VoxelRegion::from_fn(&bounds, res, res, res, |p| blob.contains(p));
            tetrahedralize(&region)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_mesh::MeshStats;

    #[test]
    fn neuron_mesh_has_at_least_two_components_and_is_nonconvex() {
        let m = neuron(NeuroLevel::L1, 0.7).unwrap();
        let stats = MeshStats::compute(&m).unwrap();
        assert!(stats.num_cells > 1_000, "got {} cells", stats.num_cells);
        assert!(
            stats.components >= 2,
            "two neuron cells: {} components",
            stats.components
        );
        assert!(stats.surface_ratio < 1.0);
    }

    #[test]
    fn neuron_detail_increases_cells_and_decreases_surface_ratio() {
        let lo = MeshStats::compute(&neuron(NeuroLevel::L1, 0.6).unwrap()).unwrap();
        let hi = MeshStats::compute(&neuron(NeuroLevel::L5, 0.6).unwrap()).unwrap();
        assert!(
            hi.num_cells > 3 * lo.num_cells,
            "{} vs {}",
            hi.num_cells,
            lo.num_cells
        );
        assert!(
            hi.surface_ratio < lo.surface_ratio,
            "S must drop with detail: {} vs {}",
            hi.surface_ratio,
            lo.surface_ratio
        );
    }

    #[test]
    fn basin_surface_ratio_matches_paper_at_scale_one() {
        let m = basin(BasinResolution::Sf2, 1.0).unwrap();
        let stats = MeshStats::compute(&m).unwrap();
        // Paper Fig. 8: S:V = 0.16 for SF2. Box meshes reproduce it closely.
        assert!(
            (stats.surface_ratio - 0.16).abs() < 0.03,
            "S:V = {} should be ≈ 0.16",
            stats.surface_ratio
        );
        assert_eq!(stats.components, 1, "convex basin is one component");
    }

    #[test]
    fn basin_sf1_is_finer_than_sf2() {
        let sf2 = MeshStats::compute(&basin(BasinResolution::Sf2, 0.4).unwrap()).unwrap();
        let sf1 = MeshStats::compute(&basin(BasinResolution::Sf1, 0.4).unwrap()).unwrap();
        assert!(sf1.num_cells > 3 * sf2.num_cells);
        assert!(sf1.surface_ratio < sf2.surface_ratio);
    }

    #[test]
    fn animation_bodies_build_and_are_connected_enough() {
        for kind in AnimationKind::ALL {
            let m = animation(kind, 0.5).unwrap();
            let stats = MeshStats::compute(&m).unwrap();
            assert!(stats.num_cells > 500, "{kind:?}: {} cells", stats.num_cells);
            assert!(stats.surface_ratio < 1.0, "{kind:?}");
        }
    }

    #[test]
    fn facial_is_most_compact_of_the_animations() {
        let horse =
            MeshStats::compute(&animation(AnimationKind::HorseGallop, 0.5).unwrap()).unwrap();
        let face =
            MeshStats::compute(&animation(AnimationKind::FacialExpression, 0.5).unwrap()).unwrap();
        assert!(
            face.surface_ratio < horse.surface_ratio,
            "facial {} < horse {} (Fig. 14 ordering)",
            face.surface_ratio,
            horse.surface_ratio
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = neuron(NeuroLevel::L1, 0.5).unwrap();
        let b = neuron(NeuroLevel::L1, 0.5).unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(a.positions()[10], b.positions()[10]);
    }

    #[test]
    fn level_metadata_is_consistent() {
        assert_eq!(NeuroLevel::ALL.len(), 5);
        let mut prev = 0.0;
        for l in NeuroLevel::ALL {
            assert!(l.paper_tets_billions() > prev);
            prev = l.paper_tets_billions();
        }
        assert_eq!(AnimationKind::HorseGallop.time_steps(), 48);
        assert_eq!(AnimationKind::FacialExpression.time_steps(), 9);
        assert_eq!(AnimationKind::CamelCompress.time_steps(), 53);
    }
}
