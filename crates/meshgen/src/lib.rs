//! Synthetic mesh dataset generators.
//!
//! The paper evaluates OCTOPUS on three families of datasets that we do
//! not have access to (Blue Brain neuron meshes, Archimedes earthquake
//! meshes, deformation-transfer animation sequences). This crate builds
//! their closest synthetic equivalents — see `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! All volumetric meshes are produced the same way:
//!
//! 1. a *mask* ([`masks`]) decides which voxels of a uniform grid belong
//!    to the solid ([`voxel::VoxelRegion`]);
//! 2. the masked voxels are subdivided into tetrahedra with the
//!    **Freudenthal/Kuhn 6-tet decomposition** ([`tet::tetrahedralize`]),
//!    which is globally consistent (shared cube faces receive the same
//!    diagonal on both sides) and yields the ~14-neighbour vertex degree
//!    the paper reports for tetrahedral meshes (Fig. 4, [16]);
//!    hexahedral meshes take the voxels directly ([`hex::hexahedralize`]).
//! 3. the [`datasets`] catalog instantiates the paper's Figs. 4 / 8 / 14
//!    dataset tables at laptop scale.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod hex;
pub mod masks;
pub mod tet;
pub mod voxel;

pub use datasets::{animation, basin, neuron, AnimationKind, BasinResolution, NeuroLevel};
pub use voxel::VoxelRegion;
