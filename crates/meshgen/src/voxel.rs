//! Masked uniform voxel grids — the shared substrate of all generators.

use octopus_geom::{Aabb, Point3, Vec3};

/// A uniform grid of `nx × ny × nz` voxels over a bounding box, with a
/// boolean mask selecting the voxels that belong to the solid.
#[derive(Clone, Debug)]
pub struct VoxelRegion {
    nx: usize,
    ny: usize,
    nz: usize,
    origin: Point3,
    cell: f32,
    mask: Vec<bool>,
}

impl VoxelRegion {
    /// Builds a region by sampling `inside` at every voxel centre.
    ///
    /// The grid covers `bounds` with `nx × ny × nz` voxels; the voxel edge
    /// length is `bounds.extent().x / nx` (callers should pass dimensions
    /// proportional to the extents for cubic voxels — the constructors in
    /// [`crate::datasets`] do).
    pub fn from_fn(
        bounds: &Aabb,
        nx: usize,
        ny: usize,
        nz: usize,
        mut inside: impl FnMut(Point3) -> bool,
    ) -> VoxelRegion {
        assert!(nx > 0 && ny > 0 && nz > 0, "voxel grid must be non-empty");
        let cell = bounds.extent().x / nx as f32;
        let origin = bounds.min;
        let mut mask = vec![false; nx * ny * nz];
        let mut idx = 0;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = Point3::new(
                        origin.x + (i as f32 + 0.5) * cell,
                        origin.y + (j as f32 + 0.5) * cell,
                        origin.z + (k as f32 + 0.5) * cell,
                    );
                    mask[idx] = inside(c);
                    idx += 1;
                }
            }
        }
        VoxelRegion {
            nx,
            ny,
            nz,
            origin,
            cell,
            mask,
        }
    }

    /// A fully solid box (every voxel set) — the convex earthquake-basin
    /// shape.
    pub fn solid_box(bounds: &Aabb, nx: usize, ny: usize, nz: usize) -> VoxelRegion {
        VoxelRegion::from_fn(bounds, nx, ny, nz, |_| true)
    }

    /// Grid dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Voxel edge length.
    #[inline]
    pub fn cell_size(&self) -> f32 {
        self.cell
    }

    /// Grid origin (minimum corner of voxel `(0, 0, 0)`).
    #[inline]
    pub fn origin(&self) -> Point3 {
        self.origin
    }

    /// True when voxel `(i, j, k)` is part of the solid.
    #[inline]
    pub fn is_set(&self, i: usize, j: usize, k: usize) -> bool {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        self.mask[i + self.nx * (j + self.ny * k)]
    }

    /// Number of solid voxels.
    pub fn count_set(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Position of lattice point `(i, j, k)` (voxel corners; ranges up to
    /// and including `nx`, `ny`, `nz`).
    #[inline]
    pub fn lattice_point(&self, i: usize, j: usize, k: usize) -> Point3 {
        self.origin
            + Vec3::new(
                i as f32 * self.cell,
                j as f32 * self.cell,
                k as f32 * self.cell,
            )
    }

    /// Iterates the `(i, j, k)` coordinates of solid voxels.
    pub fn set_voxels(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny) = (self.nx, self.ny);
        self.mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(idx, _)| {
                let i = idx % nx;
                let j = (idx / nx) % ny;
                let k = idx / (nx * ny);
                (i, j, k)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn solid_box_sets_everything() {
        let r = VoxelRegion::solid_box(&unit_bounds(), 3, 4, 5);
        assert_eq!(r.count_set(), 60);
        assert_eq!(r.dims(), (3, 4, 5));
        assert!(r.is_set(2, 3, 4));
    }

    #[test]
    fn from_fn_samples_voxel_centres() {
        // Select only voxels whose centre is in the lower half along x.
        let r = VoxelRegion::from_fn(&unit_bounds(), 4, 1, 1, |p| p.x < 0.5);
        assert!(r.is_set(0, 0, 0));
        assert!(r.is_set(1, 0, 0));
        assert!(!r.is_set(2, 0, 0));
        assert!(!r.is_set(3, 0, 0));
        assert_eq!(r.count_set(), 2);
    }

    #[test]
    fn lattice_points_span_bounds() {
        let r = VoxelRegion::solid_box(&unit_bounds(), 4, 4, 4);
        assert_eq!(r.lattice_point(0, 0, 0), Point3::ORIGIN);
        let far = r.lattice_point(4, 4, 4);
        assert!((far.x - 1.0).abs() < 1e-6);
        assert!((far.y - 1.0).abs() < 1e-6);
        assert!((far.z - 1.0).abs() < 1e-6);
        assert!((r.cell_size() - 0.25).abs() < 1e-7);
    }

    #[test]
    fn set_voxels_roundtrips_mask() {
        let r = VoxelRegion::from_fn(&unit_bounds(), 3, 3, 3, |p| p.x < 0.4 && p.y < 0.4);
        let listed: Vec<_> = r.set_voxels().collect();
        assert_eq!(listed.len(), r.count_set());
        for (i, j, k) in listed {
            assert!(r.is_set(i, j, k));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dimension_panics() {
        VoxelRegion::solid_box(&unit_bounds(), 0, 1, 1);
    }
}
