//! Solid-shape predicates used to mask voxel grids.
//!
//! Each shape answers "does this point belong to the solid?". The neuron
//! datasets use [`CapsuleTree`]s (branching tubes around a random tree
//! skeleton, mimicking dendritic arbors); the animation datasets use
//! [`Blob`]s (unions of spheres along a spine); the earthquake datasets
//! use plain solid boxes (see [`crate::voxel::VoxelRegion::solid_box`]).

use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, Point3, Vec3};

/// A sphere.
#[derive(Clone, Copy, Debug)]
pub struct Sphere {
    /// Centre.
    pub center: Point3,
    /// Radius.
    pub radius: f32,
}

impl Sphere {
    /// True when `p` is inside the sphere.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }
}

/// A capsule: all points within `radius` of the segment `a → b`.
#[derive(Clone, Copy, Debug)]
pub struct Capsule {
    /// Segment start.
    pub a: Point3,
    /// Segment end.
    pub b: Point3,
    /// Tube radius.
    pub radius: f32,
}

impl Capsule {
    /// True when `p` is inside the capsule.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        self.dist_sq(p) <= self.radius * self.radius
    }

    /// Squared distance from `p` to the capsule axis segment.
    #[inline]
    pub fn dist_sq(&self, p: Point3) -> f32 {
        let ab = self.b - self.a;
        let ap = p - self.a;
        let len_sq = ab.length_sq();
        let t = if len_sq > f32::EPSILON {
            (ap.dot(ab) / len_sq).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let closest = self.a + ab * t;
        closest.dist_sq(p)
    }
}

/// A solid torus around the z-axis: `(√(x²+y²) − major)² + z² ≤ minor²`.
///
/// Genus-1 stress-test shape: a range query can intersect it in two
/// disjoint sub-meshes even though the mesh is connected, which is the
/// configuration of the paper's Fig. 3.
#[derive(Clone, Copy, Debug)]
pub struct Torus {
    /// Centre of the tube circle.
    pub center: Point3,
    /// Distance from centre to tube axis.
    pub major: f32,
    /// Tube radius.
    pub minor: f32,
}

impl Torus {
    /// True when `p` is inside the torus.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        let dx = p.x - self.center.x;
        let dy = p.y - self.center.y;
        let dz = p.z - self.center.z;
        let ring = (dx * dx + dy * dy).sqrt() - self.major;
        ring * ring + dz * dz <= self.minor * self.minor
    }
}

/// Union of spheres along a spine — the animation "body" shapes.
#[derive(Clone, Debug)]
pub struct Blob {
    /// Component spheres.
    pub spheres: Vec<Sphere>,
}

impl Blob {
    /// True when `p` is inside any component sphere.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        self.spheres.iter().any(|s| s.contains(p))
    }

    /// A quadruped-ish blob: an elongated body with four legs and a neck,
    /// fitted inside `bounds`. `seed` perturbs proportions.
    pub fn quadruped(bounds: &Aabb, seed: u64) -> Blob {
        let mut rng = SplitMix64::new(seed);
        let c = bounds.center();
        let e = bounds.extent();
        // Thick-set proportions: see the surface-to-volume note on the
        // neuron arbors — compact bodies keep S in the paper's regime.
        let body_r = 0.22 * e.y.min(e.z);
        let mut spheres = Vec::new();
        // Body: spheres along x.
        let n_body = 7;
        for i in 0..n_body {
            let t = i as f32 / (n_body - 1) as f32;
            let x = bounds.min.x + (0.18 + 0.64 * t) * e.x;
            let jitter = rng.range_f32(0.9, 1.1);
            spheres.push(Sphere {
                center: Point3::new(x, c.y + 0.1 * e.y, c.z),
                radius: body_r * jitter,
            });
        }
        // Legs: columns of spheres under body ends.
        for &fx in &[0.25f32, 0.72] {
            for &fz in &[-0.3f32, 0.3] {
                for step in 0..4 {
                    let t = step as f32 / 3.0;
                    spheres.push(Sphere {
                        center: Point3::new(
                            bounds.min.x + fx * e.x,
                            c.y + 0.1 * e.y - t * 0.4 * e.y,
                            c.z + fz * e.z * 0.5,
                        ),
                        radius: body_r * 0.7,
                    });
                }
            }
        }
        // Neck / head.
        for step in 0..3 {
            let t = step as f32 / 2.0;
            spheres.push(Sphere {
                center: Point3::new(
                    bounds.min.x + (0.84 + 0.1 * t) * e.x,
                    c.y + (0.1 + 0.25 * t) * e.y,
                    c.z,
                ),
                radius: body_r * (0.8 - 0.15 * t),
            });
        }
        Blob { spheres }
    }

    /// A head-like blob: one large sphere with facial protrusions —
    /// compact (low surface-to-volume), like the paper's facial dataset.
    pub fn head(bounds: &Aabb, seed: u64) -> Blob {
        let mut rng = SplitMix64::new(seed);
        let c = bounds.center();
        let e = bounds.extent();
        let r = 0.4 * e.x.min(e.y).min(e.z);
        let mut spheres = vec![Sphere {
            center: c,
            radius: r,
        }];
        // Brow, nose, chin, cheeks.
        let features = [
            (Vec3::new(0.0, 0.25, 0.85), 0.35f32),
            (Vec3::new(0.0, -0.1, 0.95), 0.28),
            (Vec3::new(0.0, -0.55, 0.75), 0.3),
            (Vec3::new(0.5, -0.1, 0.7), 0.33),
            (Vec3::new(-0.5, -0.1, 0.7), 0.33),
        ];
        for (dir, scale) in features {
            let jitter = rng.range_f32(0.95, 1.05);
            spheres.push(Sphere {
                center: c + dir * r,
                radius: r * scale * jitter,
            });
        }
        Blob { spheres }
    }
}

/// A branching tube structure around a random tree skeleton — the
/// synthetic stand-in for a neuron's dendritic arbor.
#[derive(Clone, Debug)]
pub struct CapsuleTree {
    /// Tube segments.
    pub capsules: Vec<Capsule>,
    /// Soma (cell body) sphere.
    pub soma: Sphere,
}

/// Parameters for [`CapsuleTree::grow`].
#[derive(Clone, Copy, Debug)]
pub struct ArborParams {
    /// Recursion depth (levels of branching).
    pub depth: u32,
    /// Children per branch point.
    pub branching: u32,
    /// Length of a depth-0 segment.
    pub segment_len: f32,
    /// Tube radius at depth 0 (tapers with depth).
    pub radius: f32,
    /// Per-level length decay factor.
    pub length_decay: f32,
    /// Per-level radius decay factor.
    pub radius_decay: f32,
}

impl Default for ArborParams {
    fn default() -> Self {
        ArborParams {
            depth: 4,
            branching: 2,
            segment_len: 0.25,
            radius: 0.04,
            length_decay: 0.8,
            radius_decay: 0.85,
        }
    }
}

impl CapsuleTree {
    /// Grows a random arbor from `root` with initial direction `dir`.
    ///
    /// Deterministic for a fixed `seed`. Children deviate from the parent
    /// direction by a random rotation, producing the irregular, non-convex
    /// geometry of Fig. 1(c).
    pub fn grow(root: Point3, dir: Vec3, params: &ArborParams, seed: u64) -> CapsuleTree {
        let mut rng = SplitMix64::new(seed);
        let mut capsules = Vec::new();
        let dir = dir.normalized().unwrap_or(Vec3::new(0.0, 1.0, 0.0));
        let soma = Sphere {
            center: root,
            radius: params.radius * 2.5,
        };
        let mut stack = vec![(root, dir, 0u32)];
        while let Some((pos, dir, depth)) = stack.pop() {
            if depth >= params.depth {
                continue;
            }
            let len = params.segment_len * params.length_decay.powi(depth as i32);
            let radius = (params.radius * params.radius_decay.powi(depth as i32)).max(1e-4);
            let end = pos + dir * len;
            capsules.push(Capsule {
                a: pos,
                b: end,
                radius,
            });
            for _ in 0..params.branching {
                let child_dir = perturb(dir, 0.7, &mut rng);
                stack.push((end, child_dir, depth + 1));
            }
        }
        CapsuleTree { capsules, soma }
    }

    /// True when `p` is inside the arbor (any capsule or the soma).
    pub fn contains(&self, p: Point3) -> bool {
        if self.soma.contains(p) {
            return true;
        }
        self.capsules.iter().any(|c| c.contains(p))
    }

    /// Bounding box of the arbor (dilated by tube radii).
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::cube(self.soma.center, self.soma.radius);
        for c in &self.capsules {
            b = b.union(&Aabb::cube(c.a, c.radius));
            b = b.union(&Aabb::cube(c.b, c.radius));
        }
        b
    }
}

/// Random unit vector at an angle from `dir` controlled by `spread`.
fn perturb(dir: Vec3, spread: f32, rng: &mut SplitMix64) -> Vec3 {
    let jitter = Vec3::new(
        rng.range_f32(-spread, spread),
        rng.range_f32(-spread, spread),
        rng.range_f32(-spread, spread),
    );
    (dir + jitter).normalized().unwrap_or(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_containment() {
        let s = Sphere {
            center: Point3::splat(1.0),
            radius: 0.5,
        };
        assert!(s.contains(Point3::splat(1.0)));
        assert!(s.contains(Point3::new(1.4, 1.0, 1.0)));
        assert!(!s.contains(Point3::new(1.6, 1.0, 1.0)));
    }

    #[test]
    fn capsule_containment_includes_endpoints_and_middle() {
        let c = Capsule {
            a: Point3::ORIGIN,
            b: Point3::new(2.0, 0.0, 0.0),
            radius: 0.25,
        };
        assert!(c.contains(Point3::ORIGIN));
        assert!(c.contains(Point3::new(2.0, 0.0, 0.0)));
        assert!(c.contains(Point3::new(1.0, 0.2, 0.0)));
        assert!(!c.contains(Point3::new(1.0, 0.3, 0.0)));
        assert!(!c.contains(Point3::new(2.3, 0.0, 0.0)));
        // Degenerate (zero-length) capsule behaves as a sphere.
        let pt = Capsule {
            a: Point3::ORIGIN,
            b: Point3::ORIGIN,
            radius: 0.5,
        };
        assert!(pt.contains(Point3::new(0.4, 0.0, 0.0)));
    }

    #[test]
    fn torus_has_a_hole() {
        let t = Torus {
            center: Point3::ORIGIN,
            major: 1.0,
            minor: 0.25,
        };
        assert!(t.contains(Point3::new(1.0, 0.0, 0.0)));
        assert!(t.contains(Point3::new(0.0, -1.0, 0.1)));
        assert!(!t.contains(Point3::ORIGIN), "centre hole");
        assert!(!t.contains(Point3::new(2.0, 0.0, 0.0)));
    }

    #[test]
    fn capsule_tree_is_deterministic_and_nonempty() {
        let p = ArborParams::default();
        let a = CapsuleTree::grow(Point3::ORIGIN, Vec3::new(0.0, 1.0, 0.0), &p, 42);
        let b = CapsuleTree::grow(Point3::ORIGIN, Vec3::new(0.0, 1.0, 0.0), &p, 42);
        assert_eq!(a.capsules.len(), b.capsules.len());
        assert!(!a.capsules.is_empty());
        // depth-limited binary tree: 1 + 2 + 4 + 8 segments for depth 4.
        assert_eq!(a.capsules.len(), 15);
    }

    #[test]
    fn capsule_tree_contains_its_root_and_bounds_all_segments() {
        let p = ArborParams::default();
        let t = CapsuleTree::grow(Point3::splat(0.5), Vec3::new(0.0, 1.0, 0.0), &p, 7);
        assert!(t.contains(Point3::splat(0.5)));
        let b = t.bounds();
        for c in &t.capsules {
            assert!(b.contains(c.a));
            assert!(b.contains(c.b));
        }
    }

    #[test]
    fn blob_shapes_are_inside_their_bounds() {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::new(4.0, 2.0, 2.0));
        let q = Blob::quadruped(&bounds, 3);
        assert!(!q.spheres.is_empty());
        assert!(q.contains(q.spheres[0].center));
        let h = Blob::head(&Aabb::cube(Point3::splat(1.0), 1.0), 5);
        assert!(h.contains(Point3::splat(1.0)));
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let p = ArborParams::default();
        let a = CapsuleTree::grow(Point3::ORIGIN, Vec3::new(0.0, 1.0, 0.0), &p, 1);
        let b = CapsuleTree::grow(Point3::ORIGIN, Vec3::new(0.0, 1.0, 0.0), &p, 2);
        let same_endpoints = a
            .capsules
            .iter()
            .zip(&b.capsules)
            .filter(|(x, y)| x.b.dist_sq(y.b) < 1e-12)
            .count();
        assert!(same_endpoints < a.capsules.len(), "trees should differ");
    }
}
