//! Hexahedral meshing of a masked voxel grid.
//!
//! The paper's Fig. 1(b) primitive: every solid voxel becomes one `Hex8`
//! cell. Used to exercise the face/edge machinery on the second cell kind
//! and as an alternative substrate for the simulation tests.

use crate::voxel::VoxelRegion;
use octopus_geom::{Point3, VertexId};
use octopus_mesh::{Mesh, MeshError};

/// Converts the solid voxels of `region` into a conforming hexahedral
/// mesh (VTK corner ordering; shared lattice points deduplicated).
pub fn hexahedralize(region: &VoxelRegion) -> Result<Mesh, MeshError> {
    let (nx, ny, nz) = region.dims();
    let (lx, ly) = (nx + 1, ny + 1);
    let mut lattice_id = vec![VertexId::MAX; (nx + 1) * (ny + 1) * (nz + 1)];
    let mut positions: Vec<Point3> = Vec::new();
    let mut hexes: Vec<[VertexId; 8]> = Vec::with_capacity(region.count_set());
    let lattice_index = |i: usize, j: usize, k: usize| i + lx * (j + ly * k);

    // VTK Hex8 ordering: bottom quad counter-clockwise, then top quad.
    const VTK_ORDER: [(usize, usize, usize); 8] = [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ];

    for (i, j, k) in region.set_voxels() {
        let mut cell = [0 as VertexId; 8];
        for (slot, &(di, dj, dk)) in VTK_ORDER.iter().enumerate() {
            let li = lattice_index(i + di, j + dj, k + dk);
            let id = &mut lattice_id[li];
            if *id == VertexId::MAX {
                if positions.len() + 1 >= VertexId::MAX as usize {
                    return Err(MeshError::TooManyVertices);
                }
                *id = positions.len() as VertexId;
                positions.push(region.lattice_point(i + di, j + dj, k + dk));
            }
            cell[slot] = *id;
        }
        hexes.push(cell);
    }
    Mesh::from_hexes(positions, hexes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Aabb;
    use octopus_mesh::MeshStats;

    fn solid(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(n as f32));
        hexahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn counts_for_solid_cube() {
        for n in [1usize, 2, 3] {
            let m = solid(n);
            assert_eq!(m.num_cells(), n * n * n);
            assert_eq!(m.num_vertices(), (n + 1).pow(3));
        }
    }

    #[test]
    fn surface_is_the_shell() {
        let n = 4;
        let m = solid(n);
        let s = m.surface().unwrap();
        assert_eq!(s.len(), (n + 1).pow(3) - (n - 1).pow(3));
    }

    #[test]
    fn interior_degree_is_6() {
        let m = solid(4);
        let s = m.surface().unwrap();
        let interior: Vec<u32> = (0..m.num_vertices() as u32)
            .filter(|&v| !s.contains(v))
            .collect();
        assert!(!interior.is_empty());
        for &v in &interior {
            assert_eq!(m.neighbors(v).len(), 6, "grid interior degree");
        }
    }

    #[test]
    fn hex_mesh_validates() {
        let m = solid(3);
        let r = octopus_mesh::validate::validate(&m).unwrap();
        assert_eq!(r.components, 1);
        // 6 faces per shell side: a 3x3x3 cube has 9 boundary quads/side.
        assert_eq!(r.boundary_faces, 6 * 9);
    }

    #[test]
    fn stats_degree_below_tet_mesh() {
        let hex = MeshStats::compute(&solid(5)).unwrap();
        assert!(
            hex.mesh_degree < 7.0,
            "hex grids are 6-connected, got {}",
            hex.mesh_degree
        );
    }
}
