//! Freudenthal/Kuhn tetrahedralization of a masked voxel grid.
//!
//! Every solid voxel is split into six tetrahedra around its main
//! diagonal (the `(0,0,0) → (1,1,1)` corner pair). Because the rule is
//! translation-invariant, the triangle diagonals induced on shared cube
//! faces agree between neighbouring voxels, so the resulting tetrahedral
//! complex is conforming: two adjacent tets share a whole triangular
//! face. Interior vertices of a fully solid grid have degree 14, matching
//! the paper's tetrahedral mesh degree (Fig. 4, [16]).

use crate::voxel::VoxelRegion;
use octopus_geom::{Point3, VertexId};
use octopus_mesh::{Mesh, MeshError};

/// The six corner-index paths of the Kuhn decomposition.
///
/// Corners are numbered by bits `(dx, dy, dz) → dx + 2·dy + 4·dz`. Each
/// tet is `(0, first step, second step, 7)` where steps walk one axis at
/// a time from corner 0 to corner 7; the 6 axis orders give 6 tets.
const KUHN_TETS: [[u8; 4]; 6] = [
    [0, 1, 3, 7], // x, y, z
    [0, 1, 5, 7], // x, z, y
    [0, 2, 3, 7], // y, x, z
    [0, 2, 6, 7], // y, z, x
    [0, 4, 5, 7], // z, x, y
    [0, 4, 6, 7], // z, y, x
];

/// Tetrahedralizes the solid voxels of `region` into a conforming mesh.
///
/// Lattice points are shared between voxels (vertices are deduplicated),
/// so the output has `O(solid voxels)` vertices, not `8 × voxels`.
pub fn tetrahedralize(region: &VoxelRegion) -> Result<Mesh, MeshError> {
    let (nx, ny, nz) = region.dims();
    let (lx, ly) = (nx + 1, ny + 1);

    // Dense lattice → vertex-id map. u32::MAX marks "not used yet".
    let mut lattice_id = vec![VertexId::MAX; (nx + 1) * (ny + 1) * (nz + 1)];
    let mut positions: Vec<Point3> = Vec::new();
    let mut tets: Vec<[VertexId; 4]> = Vec::with_capacity(region.count_set() * 6);

    let lattice_index = |i: usize, j: usize, k: usize| i + lx * (j + ly * k);

    for (i, j, k) in region.set_voxels() {
        // Ids of the 8 cube corners, allocating new vertices on demand.
        let mut corner = [0 as VertexId; 8];
        for (bit, c) in corner.iter_mut().enumerate() {
            let (di, dj, dk) = (bit & 1, (bit >> 1) & 1, (bit >> 2) & 1);
            let li = lattice_index(i + di, j + dj, k + dk);
            let id = &mut lattice_id[li];
            if *id == VertexId::MAX {
                if positions.len() + 1 >= VertexId::MAX as usize {
                    return Err(MeshError::TooManyVertices);
                }
                *id = positions.len() as VertexId;
                positions.push(region.lattice_point(i + di, j + dj, k + dk));
            }
            *c = *id;
        }
        for t in &KUHN_TETS {
            tets.push([
                corner[t[0] as usize],
                corner[t[1] as usize],
                corner[t[2] as usize],
                corner[t[3] as usize],
            ]);
        }
    }
    Mesh::from_tets(positions, tets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Aabb;
    use octopus_mesh::MeshStats;

    fn solid(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(n as f32));
        tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn counts_for_solid_cube() {
        for n in [1usize, 2, 3, 4] {
            let m = solid(n);
            assert_eq!(m.num_cells(), 6 * n * n * n, "6 tets per voxel");
            assert_eq!(
                m.num_vertices(),
                (n + 1).pow(3),
                "lattice points deduplicated"
            );
        }
    }

    #[test]
    fn surface_of_solid_cube_is_exactly_the_shell() {
        for n in [2usize, 3, 5] {
            let m = solid(n);
            let s = m.surface().unwrap();
            let interior = (n - 1).pow(3);
            let expected_surface = (n + 1).pow(3) - interior;
            assert_eq!(s.len(), expected_surface, "n={n}");
            // Extraction succeeding also proves the decomposition is
            // conforming: a mismatched face diagonal would make interior
            // triangles occur once and inflate the surface.
        }
    }

    #[test]
    fn interior_vertex_degree_is_14() {
        let m = solid(4);
        let s = m.surface().unwrap();
        let interior: Vec<u32> = (0..m.num_vertices() as u32)
            .filter(|&v| !s.contains(v))
            .collect();
        assert!(!interior.is_empty());
        for &v in &interior {
            assert_eq!(m.neighbors(v).len(), 14, "Kuhn interior degree");
        }
    }

    #[test]
    fn mesh_is_valid_and_connected() {
        let m = solid(3);
        let r = octopus_mesh::validate::validate(&m).unwrap();
        assert_eq!(r.components, 1);
        assert_eq!(r.cells_checked, 6 * 27);
    }

    #[test]
    fn disjoint_voxels_give_disjoint_components() {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::new(5.0, 1.0, 1.0));
        // Voxels 0 and 4 along x: gap of 3 empty voxels between them.
        let region = VoxelRegion::from_fn(&bounds, 5, 1, 1, |p| p.x < 1.0 || p.x > 4.0);
        let m = tetrahedralize(&region).unwrap();
        let stats = MeshStats::compute(&m).unwrap();
        assert_eq!(stats.components, 2);
        assert_eq!(m.num_cells(), 12);
        assert_eq!(stats.surface_ratio, 1.0, "isolated voxels are all surface");
    }

    #[test]
    fn mesh_degree_approaches_14_for_large_grids() {
        let m = solid(8);
        let stats = MeshStats::compute(&m).unwrap();
        assert!(
            stats.mesh_degree > 11.0 && stats.mesh_degree < 14.5,
            "degree {} should approach 14",
            stats.mesh_degree
        );
    }

    #[test]
    fn empty_region_yields_empty_mesh() {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let region = VoxelRegion::from_fn(&bounds, 2, 2, 2, |_| false);
        let m = tetrahedralize(&region).unwrap();
        assert_eq!(m.num_cells(), 0);
        assert_eq!(m.num_vertices(), 0);
    }

    #[test]
    fn positions_lie_on_lattice() {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(2.0));
        let region = VoxelRegion::solid_box(&bounds, 2, 2, 2);
        let m = tetrahedralize(&region).unwrap();
        for p in m.positions() {
            for axis in 0..3 {
                let v = p[axis];
                assert!((v - v.round()).abs() < 1e-6, "lattice coordinate {v}");
                assert!((0.0..=2.0).contains(&v));
            }
        }
    }
}
