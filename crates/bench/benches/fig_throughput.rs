//! `fig_throughput`: query throughput (queries/sec) of the service
//! layer versus worker count and batch size.
//!
//! Not a paper figure — this measures the `octopus-service` subsystem:
//! the same monitoring batch is answered by the sequential executor
//! (the baseline) and by [`ParallelExecutor`] at 1/2/4/8 workers, for
//! several batch sizes. Run directly, or with `--json <path>` to
//! record a machine-readable baseline (the committed
//! `BENCH_throughput.json`):
//!
//! ```bash
//! cargo bench -p octopus-bench --bench fig_throughput
//! cargo bench -p octopus-bench --bench fig_throughput -- --json BENCH_throughput.json
//! ```

use octopus_bench::workload::QueryGen;
use octopus_core::Octopus;
use octopus_geom::Aabb;
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_service::ParallelExecutor;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 3] = [16, 64, 256];
const SELECTIVITY: f64 = 0.001;
/// Measurement budget per configuration.
const BUDGET: Duration = Duration::from_millis(300);

struct Entry {
    workers: usize, // 0 = sequential baseline
    batch: usize,
    qps: f64,
    speedup: f64,
}

/// Repeats `run` (one whole batch) until the budget is spent; returns
/// queries/sec.
fn measure(batch: usize, mut run: impl FnMut() -> usize) -> f64 {
    // Warm-up round, also sanity-checking that results materialise.
    assert!(run() > 0, "throughput workload returned no vertices");
    let t0 = Instant::now();
    let mut batches = 0u32;
    while t0.elapsed() < BUDGET || batches == 0 {
        std::hint::black_box(run());
        batches += 1;
    }
    f64::from(batches) * batch as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json <path>"));
        }
    }

    let mesh: Mesh = neuron(NeuroLevel::L3, 0.6).expect("neuron");
    let octopus = Octopus::new(&mesh).expect("surface");
    let mut gen = QueryGen::new(&mesh, 0x7410_4242);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "fig_throughput: {} vertices, selectivity {SELECTIVITY}, {hw} hardware thread(s)",
        mesh.num_vertices()
    );
    println!(
        "{:<34} {:>12} {:>9}",
        "configuration", "queries/s", "speedup"
    );

    let mut entries: Vec<Entry> = Vec::new();
    for &batch in &BATCH_SIZES {
        let queries: Vec<Aabb> = gen.batch_with_selectivity(batch, SELECTIVITY);

        // Sequential baseline: one scratch, one thread, same queries.
        let mut seq = Octopus::new(&mesh).expect("surface");
        let mut out = Vec::new();
        let seq_qps = measure(batch, || {
            let mut total = 0;
            for q in &queries {
                out.clear();
                seq.query(&mesh, q, &mut out);
                total += out.len();
            }
            total
        });
        println!(
            "{:<34} {:>12.0} {:>9}",
            format!("batch{batch}/sequential"),
            seq_qps,
            "1.00x"
        );
        entries.push(Entry {
            workers: 0,
            batch,
            qps: seq_qps,
            speedup: 1.0,
        });

        for &workers in &WORKER_COUNTS {
            let mut pool = ParallelExecutor::new(workers);
            let qps = measure(batch, || {
                pool.execute_batch(&octopus, &mesh, &queries)
                    .iter()
                    .map(|r| r.vertices.len())
                    .sum()
            });
            let speedup = qps / seq_qps;
            println!(
                "{:<34} {:>12.0} {:>8.2}x",
                format!("batch{batch}/workers{workers}"),
                qps,
                speedup
            );
            entries.push(Entry {
                workers,
                batch,
                qps,
                speedup,
            });
        }
    }

    if let Some(path) = json_path {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"fig_throughput\",");
        let _ = writeln!(json, "  \"hardware_threads\": {hw},");
        let _ = writeln!(json, "  \"mesh_vertices\": {},", mesh.num_vertices());
        let _ = writeln!(json, "  \"selectivity\": {SELECTIVITY},");
        let _ = writeln!(json, "  \"entries\": [");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"workers\": {}, \"batch\": {}, \"qps\": {:.0}, \"speedup_vs_sequential\": {:.3}}}{comma}",
                e.workers, e.batch, e.qps, e.speedup
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write json baseline");
        println!("baseline written to {path}");
    }
}
