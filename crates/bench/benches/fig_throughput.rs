//! `fig_throughput`: query throughput (queries/sec) of the service
//! layer versus worker count, batch size, and execution mode.
//!
//! Not a paper figure — this measures the `octopus-service` subsystem.
//! The same monitoring batch is answered three ways:
//!
//! * `sequential` — the baseline: one `Octopus`, one thread;
//! * `spawn` — PR 2's `thread::scope`-per-batch executor
//!   ([`ParallelExecutor::execute_batch_spawning`]), kept as the
//!   ablation of the fixed spawn cost;
//! * `pool` — the persistent worker pool
//!   ([`ParallelExecutor::execute_batch`]) with result-buffer
//!   recycling, the serving hot path.
//!
//! A second section sweeps the **snapshot-ring depth** K ∈ {1, 2, 3}
//! of the full SIMULATE ∥ MONITOR loop (`ring` mode, one step + one
//! batch per iteration, deforming mesh) against a stop-the-world
//! replay of the same schedule (`ring_stw`) — the end-to-end number
//! the pipelining exists for. On a 1-hardware-thread container the
//! overlap cannot materialise; re-record on real cores.
//!
//! Two batch-engine sections follow: `shared`/`shared_off` run an
//! overlapping batch of 64 through the shared-frontier engine vs. the
//! independent pool executor (also reporting the deterministic
//! traversal-event counters), and `seedcache`/`seedcache_off` run a
//! repeated monitoring batch with and without the temporal seed cache
//! (reporting the surface-probe vs. cache-probe phase attribution and
//! the hit rate). The 1-hardware-thread caveat applies to every
//! parallel mode.
//!
//! A final section measures **standing queries**: the same 16 boxes
//! either re-queried from scratch every step (`standing_requery`) or
//! registered once as subscriptions and *polled* for incremental
//! deltas (`standing_poll`), reporting the fraction of polls served by
//! the drift-bounded delta fast path instead of a crawl.
//!
//! The **telemetry overhead** section re-runs the serving loop three
//! ways — no registry attached (`telemetry_none`), a *disabled*
//! registry attached (`telemetry_disabled`, the construction-time
//! toggle), and an enabled one (`telemetry_on`) — in strictly
//! alternating rounds so thermal/scheduler drift hits all three
//! equally. The recorded on-vs-none regression is the cost of full
//! instrumentation and must stay under a few percent.
//!
//! An **admission overhead** section follows the same alternating-round
//! protocol for PR 8's admission control: the identical serving loop
//! with batches answered directly (`admission_off`) vs. routed through
//! `enqueue` → `drain_admitted` (`admission_on`, bounded queue +
//! weighted-fair dequeue + deadline check, no faults injected). The
//! acceptance gate is < 3% qps regression.
//!
//! Run directly, or with `--json <path>` to record a machine-readable
//! baseline (the committed `BENCH_throughput.json`, which also carries
//! the PR 2 numbers under `baseline_pr2` for trajectory):
//!
//! ```bash
//! cargo bench -p octopus-bench --bench fig_throughput
//! cargo bench -p octopus-bench --bench fig_throughput -- --json BENCH_throughput.json
//! ```

use octopus_bench::workload::QueryGen;
use octopus_core::Octopus;
use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, Point3};
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_service::{
    AdmissionConfig, BatchEngine, BatchEngineConfig, BatchStats, LayoutPolicy, MonitorLoop,
    ParallelExecutor,
};
use octopus_sim::{Simulation, SmoothRandomField};
use octopus_telemetry::Registry;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 3] = [16, 64, 256];
const SELECTIVITY: f64 = 0.001;
/// Measurement budget per configuration.
const BUDGET: Duration = Duration::from_millis(300);
/// Snapshot-ring depths swept in the SIMULATE ∥ MONITOR section.
const RING_DEPTHS: [usize; 3] = [1, 2, 3];
/// Batch size and workers of the ring sweep (the serving sweet spot).
const RING_BATCH: usize = 16;
const RING_WORKERS: usize = 2;
const RING_FIELD_SEED: u64 = 0x51A7_0ECA;

/// The PR 2 numbers (spawn-per-batch executor, 1-hardware-thread
/// container), embedded verbatim so the committed baseline keeps the
/// trajectory visible next to fresh runs.
const BASELINE_PR2: &str = r#"{
    "hardware_threads": 1,
    "note": "PR 2 spawn-per-batch executor; workers 0 = sequential",
    "entries": [
      {"workers": 0, "batch": 16, "qps": 71943, "speedup_vs_sequential": 1.000},
      {"workers": 1, "batch": 16, "qps": 67213, "speedup_vs_sequential": 0.934},
      {"workers": 2, "batch": 16, "qps": 52170, "speedup_vs_sequential": 0.725},
      {"workers": 4, "batch": 16, "qps": 47510, "speedup_vs_sequential": 0.660},
      {"workers": 8, "batch": 16, "qps": 38033, "speedup_vs_sequential": 0.529},
      {"workers": 0, "batch": 64, "qps": 50743, "speedup_vs_sequential": 1.000},
      {"workers": 1, "batch": 64, "qps": 47251, "speedup_vs_sequential": 0.931},
      {"workers": 2, "batch": 64, "qps": 44150, "speedup_vs_sequential": 0.870},
      {"workers": 4, "batch": 64, "qps": 42569, "speedup_vs_sequential": 0.839},
      {"workers": 8, "batch": 64, "qps": 34074, "speedup_vs_sequential": 0.671},
      {"workers": 0, "batch": 256, "qps": 49987, "speedup_vs_sequential": 1.000},
      {"workers": 1, "batch": 256, "qps": 48867, "speedup_vs_sequential": 0.978},
      {"workers": 2, "batch": 256, "qps": 46048, "speedup_vs_sequential": 0.921},
      {"workers": 4, "batch": 256, "qps": 47262, "speedup_vs_sequential": 0.945},
      {"workers": 8, "batch": 256, "qps": 48176, "speedup_vs_sequential": 0.964}
    ]
  }"#;

struct Entry {
    /// "sequential" | "spawn" | "pool" | "ring_stw" | "ring" |
    /// "shared_off" | "shared" | "seedcache_off" | "seedcache" |
    /// "standing_requery" | "standing_poll" | "telemetry_none" |
    /// "telemetry_disabled" | "telemetry_on" | "admission_off" |
    /// "admission_on"
    mode: &'static str,
    workers: usize, // 0 = sequential baseline
    batch: usize,
    /// Snapshot-ring depth K (`0` for the batch-executor modes and the
    /// stop-the-world ring baseline).
    depth: usize,
    qps: f64,
    speedup: f64,
}

/// Repeats `run` (one whole batch) until the budget is spent; returns
/// queries/sec.
fn measure(batch: usize, mut run: impl FnMut() -> usize) -> f64 {
    // Warm-up round, also sanity-checking that results materialise.
    assert!(run() > 0, "throughput workload returned no vertices");
    let t0 = Instant::now();
    let mut batches = 0u32;
    while t0.elapsed() < BUDGET || batches == 0 {
        std::hint::black_box(run());
        batches += 1;
    }
    f64::from(batches) * batch as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json <path>"));
        }
    }

    let mesh: Mesh = neuron(NeuroLevel::L3, 0.6).expect("neuron");
    let octopus = Octopus::new(&mesh).expect("surface");
    let mut gen = QueryGen::new(&mesh, 0x7410_4242);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "fig_throughput: {} vertices, selectivity {SELECTIVITY}, {hw} hardware thread(s)",
        mesh.num_vertices()
    );
    println!(
        "{:<34} {:>12} {:>9}",
        "configuration", "queries/s", "speedup"
    );

    let mut entries: Vec<Entry> = Vec::new();
    for &batch in &BATCH_SIZES {
        let queries: Vec<Aabb> = gen.batch_with_selectivity(batch, SELECTIVITY);

        // Sequential baseline: one scratch, one thread, same queries.
        let mut seq = Octopus::new(&mesh).expect("surface");
        let mut out = Vec::new();
        let seq_qps = measure(batch, || {
            let mut total = 0;
            for q in &queries {
                out.clear();
                seq.query(&mesh, q, &mut out);
                total += out.len();
            }
            total
        });
        println!(
            "{:<34} {:>12.0} {:>9}",
            format!("batch{batch}/sequential"),
            seq_qps,
            "1.00x"
        );
        entries.push(Entry {
            mode: "sequential",
            workers: 0,
            batch,
            depth: 0,
            qps: seq_qps,
            speedup: 1.0,
        });

        for &workers in &WORKER_COUNTS {
            // Spawn-per-batch ablation (PR 2 behaviour).
            let mut spawning = ParallelExecutor::new(workers);
            let spawn_qps = measure(batch, || {
                spawning
                    .execute_batch_spawning(&octopus, &mesh, &queries)
                    .iter()
                    .map(|r| r.vertices.len())
                    .sum()
            });
            println!(
                "{:<34} {:>12.0} {:>8.2}x",
                format!("batch{batch}/spawn/workers{workers}"),
                spawn_qps,
                spawn_qps / seq_qps
            );
            entries.push(Entry {
                mode: "spawn",
                workers,
                batch,
                depth: 0,
                qps: spawn_qps,
                speedup: spawn_qps / seq_qps,
            });

            // Persistent pool + buffer recycling (the serving hot path).
            let mut pool = ParallelExecutor::new(workers);
            let pool_qps = measure(batch, || {
                let results = pool.execute_batch(&octopus, &mesh, &queries);
                let total = results.iter().map(|r| r.vertices.len()).sum();
                pool.recycle(results);
                total
            });
            println!(
                "{:<34} {:>12.0} {:>8.2}x",
                format!("batch{batch}/pool/workers{workers}"),
                pool_qps,
                pool_qps / seq_qps
            );
            entries.push(Entry {
                mode: "pool",
                workers,
                batch,
                depth: 0,
                qps: pool_qps,
                speedup: pool_qps / seq_qps,
            });
        }
    }

    // ---- Snapshot-ring depth sweep: SIMULATE ∥ MONITOR end to end ----
    // One iteration = one simulation step + one batch of queries. The
    // stop-the-world baseline steps, then queries the live mesh; the
    // ring configurations overlap the batch with up to K in-flight
    // steps. Queries/sec here *includes* the simulation time — the
    // number a monitoring deployment actually sees.
    let ring_queries: Vec<Aabb> = gen.batch_with_selectivity(RING_BATCH, SELECTIVITY);
    let make_sim = |mesh: &Mesh| {
        Simulation::new(
            mesh.clone(),
            Box::new(SmoothRandomField::new(0.006, 3, RING_FIELD_SEED)),
        )
    };

    let stw_qps = {
        let mut sim = make_sim(&mesh);
        let mut stw = Octopus::new(sim.mesh()).expect("surface");
        let mut out = Vec::new();
        measure(RING_BATCH, || {
            sim.step().expect("deformation step");
            let mut total = 0;
            for q in &ring_queries {
                out.clear();
                stw.query(sim.mesh(), q, &mut out);
                total += out.len();
            }
            total
        })
    };
    println!(
        "{:<34} {:>12.0} {:>9}",
        format!("ring/stop-the-world/batch{RING_BATCH}"),
        stw_qps,
        "1.00x"
    );
    entries.push(Entry {
        mode: "ring_stw",
        workers: 0,
        batch: RING_BATCH,
        depth: 0,
        qps: stw_qps,
        speedup: 1.0,
    });

    for &depth in &RING_DEPTHS {
        let mut monitor =
            MonitorLoop::with_config(make_sim(&mesh), RING_WORKERS, LayoutPolicy::Preserve, depth)
                .expect("monitor");
        let ring_qps = measure(RING_BATCH, || {
            monitor.fill_pipeline().expect("begin steps");
            monitor.finish_step().expect("finish step");
            let results = monitor.query_batch(&ring_queries);
            let total = results.iter().map(|r| r.vertices.len()).sum();
            monitor.recycle(results);
            total
        });
        println!(
            "{:<34} {:>12.0} {:>8.2}x",
            format!("ring/depth{depth}/workers{RING_WORKERS}/batch{RING_BATCH}"),
            ring_qps,
            ring_qps / stw_qps
        );
        entries.push(Entry {
            mode: "ring",
            workers: RING_WORKERS,
            batch: RING_BATCH,
            depth,
            qps: ring_qps,
            speedup: ring_qps / stw_qps,
        });
    }

    // ---- Shared-frontier batch engine: overlapping batch of 64 -------
    // 16 cluster centres, 4 boxes per cluster shifted by ~10 % of their
    // side: heavy pairwise overlap inside each cluster. The same batch
    // runs through the plain pool executor (every query crawls its own
    // frontier) and through the batch engine (Hilbert sweep → overlap
    // groups → one shared frontier per group). Planner and seed cache
    // are off so the delta isolates frontier sharing.
    let shared_queries: Vec<Aabb> = {
        let base = gen.batch_with_selectivity(16, SELECTIVITY);
        let mut rng = SplitMix64::new(0x5AA3_ED01);
        base.iter()
            .flat_map(|q| {
                let side = q.extent().x;
                (0..4)
                    .map(|k| {
                        let shift = 0.1 * side * k as f32 + rng.range_f32(0.0, 0.02 * side);
                        Aabb::new(
                            Point3::new(q.min.x + shift, q.min.y, q.min.z),
                            Point3::new(q.max.x + shift, q.max.y, q.max.z),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    const SHARED_WORKERS: usize = 2;
    let shared_off_qps = {
        let mut pool = ParallelExecutor::new(SHARED_WORKERS);
        measure(shared_queries.len(), || {
            let results = pool.execute_batch(&octopus, &mesh, &shared_queries);
            let total = results.iter().map(|r| r.vertices.len()).sum();
            pool.recycle(results);
            total
        })
    };
    println!(
        "{:<34} {:>12.0} {:>9}",
        format!("shared/independent/batch{}", shared_queries.len()),
        shared_off_qps,
        "1.00x"
    );
    entries.push(Entry {
        mode: "shared_off",
        workers: SHARED_WORKERS,
        batch: shared_queries.len(),
        depth: 0,
        qps: shared_off_qps,
        speedup: 1.0,
    });
    let (shared_qps, shared_report) = {
        let mut pool = ParallelExecutor::new(SHARED_WORKERS);
        let mut engine = BatchEngine::new(
            BatchEngineConfig {
                use_planner: false,
                use_seed_cache: false,
                ..BatchEngineConfig::default()
            },
            &mesh,
        )
        .expect("engine");
        let epoch = mesh.restructure_epoch();
        let qps = measure(shared_queries.len(), || {
            let results = engine.execute(&mut pool, &octopus, &mesh, &shared_queries, epoch, 0.0);
            let total = results.iter().map(|r| r.vertices.len()).sum();
            pool.recycle(results);
            total
        });
        (qps, *engine.report())
    };
    println!(
        "{:<34} {:>12.0} {:>8.2}x",
        format!("shared/engine/batch{}", shared_queries.len()),
        shared_qps,
        shared_qps / shared_off_qps
    );
    println!(
        "  shared-frontier work: {} distinct traversal events vs {} attributed \
         ({} of {} queries grouped)",
        shared_report.shared_visited,
        shared_report.attributed_visited,
        shared_report.grouped_queries,
        shared_report.queries
    );
    entries.push(Entry {
        mode: "shared",
        workers: SHARED_WORKERS,
        batch: shared_queries.len(),
        depth: 0,
        qps: shared_qps,
        speedup: shared_qps / shared_off_qps,
    });

    // ---- Temporal seed cache: repeated monitoring batch --------------
    // The same 16-query batch every step of a deforming simulation —
    // the monitoring workload the cache exists for. `seedcache_off`
    // re-probes the surface index each step; `seedcache` warm-starts
    // from the previous step's boundary-vertex sample.
    let cache_queries: Vec<Aabb> = gen.batch_with_selectivity(RING_BATCH, SELECTIVITY);
    let mut cache_qps = [0.0f64; 2];
    let mut cache_split: Option<(BatchStats, f64)> = None;
    for (slot, use_cache) in [(0usize, false), (1usize, true)] {
        let mut monitor =
            MonitorLoop::with_config(make_sim(&mesh), RING_WORKERS, LayoutPolicy::Preserve, 1)
                .expect("monitor");
        monitor
            .set_batch_engine(BatchEngineConfig {
                use_seed_cache: use_cache,
                use_planner: false,
                ..BatchEngineConfig::default()
            })
            .expect("engine");
        let mut agg = BatchStats::default();
        cache_qps[slot] = measure(RING_BATCH, || {
            monitor.fill_pipeline().expect("begin steps");
            monitor.finish_step().expect("finish step");
            let results = monitor.query_batch(&cache_queries);
            let total = results.iter().map(|r| r.vertices.len()).sum();
            let stats = BatchStats::aggregate(&results);
            agg.queries += stats.queries;
            agg.total_results += stats.total_results;
            agg.phases.accumulate(&stats.phases);
            monitor.recycle(results);
            total
        });
        if use_cache {
            let hit_rate = monitor.seed_cache_stats().map_or(0.0, |s| s.hit_rate());
            cache_split = Some((agg, hit_rate));
        }
    }
    println!(
        "{:<34} {:>12.0} {:>9}",
        format!("seedcache/off/batch{RING_BATCH}"),
        cache_qps[0],
        "1.00x"
    );
    entries.push(Entry {
        mode: "seedcache_off",
        workers: RING_WORKERS,
        batch: RING_BATCH,
        depth: 1,
        qps: cache_qps[0],
        speedup: 1.0,
    });
    println!(
        "{:<34} {:>12.0} {:>8.2}x",
        format!("seedcache/on/batch{RING_BATCH}"),
        cache_qps[1],
        cache_qps[1] / cache_qps[0]
    );
    if let Some((agg, hit_rate)) = cache_split {
        // The PhaseTimings split attributes seed-cache hits and
        // surface-index probes to distinct phases.
        println!(
            "  seed-phase attribution: {:?} surface probes ({} queries) vs {:?} cache probes \
             ({} cache-seeded), hit rate {:.1}%",
            agg.phases.surface_probe,
            agg.queries - agg.phases.cache_seeded,
            agg.phases.cache_probe,
            agg.phases.cache_seeded,
            100.0 * hit_rate
        );
    }
    entries.push(Entry {
        mode: "seedcache",
        workers: RING_WORKERS,
        batch: RING_BATCH,
        depth: 1,
        qps: cache_qps[1],
        speedup: cache_qps[1] / cache_qps[0],
    });

    // ---- Standing queries: poll deltas vs re-query every step --------
    // The same 16 boxes, every step of a deforming simulation. The
    // baseline answers them as a fresh batch each step; the standing
    // configuration subscribes them once and polls: while accumulated
    // drift stays inside the band, only vertices near a box boundary
    // are re-tested — no probe, no walk, no crawl.
    let standing_queries: Vec<Aabb> = gen.batch_with_selectivity(RING_BATCH, SELECTIVITY);
    let requery_qps = {
        let mut monitor =
            MonitorLoop::with_config(make_sim(&mesh), RING_WORKERS, LayoutPolicy::Preserve, 1)
                .expect("monitor");
        measure(RING_BATCH, || {
            monitor.fill_pipeline().expect("begin steps");
            monitor.finish_step().expect("finish step");
            let results = monitor.query_batch(&standing_queries);
            let total = results.iter().map(|r| r.vertices.len()).sum();
            monitor.recycle(results);
            total
        })
    };
    println!(
        "{:<34} {:>12.0} {:>9}",
        format!("standing/requery/batch{RING_BATCH}"),
        requery_qps,
        "1.00x"
    );
    entries.push(Entry {
        mode: "standing_requery",
        workers: RING_WORKERS,
        batch: RING_BATCH,
        depth: 1,
        qps: requery_qps,
        speedup: 1.0,
    });
    let (poll_qps, delta_hit_rate) = {
        let mut monitor =
            MonitorLoop::with_config(make_sim(&mesh), RING_WORKERS, LayoutPolicy::Preserve, 1)
                .expect("monitor");
        let ids: Vec<_> = standing_queries
            .iter()
            .map(|q| monitor.subscribe(q))
            .collect();
        let qps = measure(RING_BATCH, || {
            monitor.fill_pipeline().expect("begin steps");
            monitor.finish_step().expect("finish step");
            std::hint::black_box(monitor.poll_subscriptions());
            ids.iter()
                .map(|&id| monitor.subscription_result(id).map_or(0, <[_]>::len))
                .sum()
        });
        let (mut delta_polls, mut polls) = (0u64, 0u64);
        for &id in &ids {
            let s = monitor.subscription_stats(id).expect("live subscription");
            delta_polls += s.delta_polls;
            polls += s.polls;
        }
        (qps, delta_polls as f64 / polls.max(1) as f64)
    };
    println!(
        "{:<34} {:>12.0} {:>8.2}x",
        format!("standing/poll/batch{RING_BATCH}"),
        poll_qps,
        poll_qps / requery_qps
    );
    println!(
        "  standing delta-path hit rate: {:.1}% of polls",
        100.0 * delta_hit_rate
    );
    entries.push(Entry {
        mode: "standing_poll",
        workers: RING_WORKERS,
        batch: RING_BATCH,
        depth: 1,
        qps: poll_qps,
        speedup: poll_qps / requery_qps,
    });

    // ---- Telemetry overhead: instrumented vs bare serving loop -------
    // The full serving configuration (monitor + batch engine, so the
    // executor phase histograms, engine counters and seed cache all
    // record on every query) measured with no registry, a disabled
    // registry, and an enabled one. Rounds alternate 1:1:1 so ambient
    // drift cannot masquerade as instrumentation cost.
    let tele_queries: Vec<Aabb> = gen.batch_with_selectivity(RING_BATCH, SELECTIVITY);
    let disabled_registry = Registry::new(false);
    let enabled_registry = Registry::new(true);
    let mut tele_monitors: Vec<MonitorLoop> =
        [None, Some(&disabled_registry), Some(&enabled_registry)]
            .into_iter()
            .map(|registry| {
                let mut monitor = MonitorLoop::with_config(
                    make_sim(&mesh),
                    RING_WORKERS,
                    LayoutPolicy::Preserve,
                    1,
                )
                .expect("monitor");
                monitor
                    .set_batch_engine(BatchEngineConfig::default())
                    .expect("engine");
                if let Some(r) = registry {
                    monitor.attach_telemetry(r);
                }
                monitor
            })
            .collect();
    let run_serving = |monitor: &mut MonitorLoop| -> usize {
        monitor.fill_pipeline().expect("begin steps");
        monitor.finish_step().expect("finish step");
        let results = monitor.query_batch(&tele_queries);
        let total = results.iter().map(|r| r.vertices.len()).sum();
        monitor.recycle(results);
        total
    };
    for monitor in &mut tele_monitors {
        assert!(run_serving(monitor) > 0, "warm-up returned no vertices");
    }
    let mut tele_busy = [Duration::ZERO; 3];
    let mut tele_rounds = [0u32; 3];
    while tele_busy.iter().sum::<Duration>() < 3 * BUDGET || tele_rounds[0] == 0 {
        for (i, monitor) in tele_monitors.iter_mut().enumerate() {
            let t = Instant::now();
            std::hint::black_box(run_serving(monitor));
            tele_busy[i] += t.elapsed();
            tele_rounds[i] += 1;
        }
    }
    let tele_qps: Vec<f64> = (0..3)
        .map(|i| f64::from(tele_rounds[i]) * RING_BATCH as f64 / tele_busy[i].as_secs_f64())
        .collect();
    let tele_modes = ["telemetry_none", "telemetry_disabled", "telemetry_on"];
    for (i, &mode) in tele_modes.iter().enumerate() {
        println!(
            "{:<34} {:>12.0} {:>8.2}x",
            format!("{mode}/batch{RING_BATCH}"),
            tele_qps[i],
            tele_qps[i] / tele_qps[0]
        );
        entries.push(Entry {
            mode,
            workers: RING_WORKERS,
            batch: RING_BATCH,
            depth: 1,
            qps: tele_qps[i],
            speedup: tele_qps[i] / tele_qps[0],
        });
    }
    let telemetry_overhead_pct = 100.0 * (1.0 - tele_qps[2] / tele_qps[0]);
    println!(
        "  telemetry overhead: {telemetry_overhead_pct:.2}% qps regression with full \
         instrumentation ({:.2}% with the registry constructed disabled)",
        100.0 * (1.0 - tele_qps[1] / tele_qps[0])
    );

    // ---- Admission overhead: bounded-queue routing vs direct calls ---
    // Same serving loop as the telemetry section, but the batch is
    // either answered directly (`query_batch`) or routed through the
    // admission front (`enqueue` → weighted-fair `drain_admitted`) with
    // no faults injected — the steady-state cost of the bounded queue,
    // stride scheduler and deadline check. Rounds alternate 1:1.
    let adm_queries: Vec<Aabb> = gen.batch_with_selectivity(RING_BATCH, SELECTIVITY);
    let mut adm_monitors: Vec<MonitorLoop> = [false, true]
        .into_iter()
        .map(|admitted| {
            let mut monitor =
                MonitorLoop::with_config(make_sim(&mesh), RING_WORKERS, LayoutPolicy::Preserve, 1)
                    .expect("monitor");
            monitor
                .set_batch_engine(BatchEngineConfig::default())
                .expect("engine");
            if admitted {
                monitor.set_admission(AdmissionConfig::default());
            }
            monitor
        })
        .collect();
    let run_direct = |monitor: &mut MonitorLoop| -> usize {
        monitor.fill_pipeline().expect("begin steps");
        monitor.finish_step().expect("finish step");
        let results = monitor.query_batch(&adm_queries);
        let total = results.iter().map(|r| r.vertices.len()).sum();
        monitor.recycle(results);
        total
    };
    let run_admitted = |monitor: &mut MonitorLoop| -> usize {
        monitor.fill_pipeline().expect("begin steps");
        monitor.finish_step().expect("finish step");
        let ticket = monitor
            .enqueue(0, adm_queries.clone(), None)
            .expect("enqueue");
        let out = monitor.drain_admitted(1).expect("drain admitted");
        assert!(out.shed.is_empty(), "no shedding in the no-fault run");
        let batch = out.batches.into_iter().next().expect("one admitted batch");
        assert_eq!(batch.ticket, ticket);
        let total = batch.results.iter().map(|r| r.vertices.len()).sum();
        monitor.recycle(batch.results);
        total
    };
    for (i, monitor) in adm_monitors.iter_mut().enumerate() {
        let warm = if i == 0 {
            run_direct(monitor)
        } else {
            run_admitted(monitor)
        };
        assert!(warm > 0, "warm-up returned no vertices");
    }
    let mut adm_busy = [Duration::ZERO; 2];
    let mut adm_rounds = [0u32; 2];
    while adm_busy.iter().sum::<Duration>() < 2 * BUDGET || adm_rounds[0] == 0 {
        for (i, monitor) in adm_monitors.iter_mut().enumerate() {
            let t = Instant::now();
            if i == 0 {
                std::hint::black_box(run_direct(monitor));
            } else {
                std::hint::black_box(run_admitted(monitor));
            }
            adm_busy[i] += t.elapsed();
            adm_rounds[i] += 1;
        }
    }
    let adm_qps: Vec<f64> = (0..2)
        .map(|i| f64::from(adm_rounds[i]) * RING_BATCH as f64 / adm_busy[i].as_secs_f64())
        .collect();
    let adm_modes = ["admission_off", "admission_on"];
    for (i, &mode) in adm_modes.iter().enumerate() {
        println!(
            "{:<34} {:>12.0} {:>8.2}x",
            format!("{mode}/batch{RING_BATCH}"),
            adm_qps[i],
            adm_qps[i] / adm_qps[0]
        );
        entries.push(Entry {
            mode,
            workers: RING_WORKERS,
            batch: RING_BATCH,
            depth: 1,
            qps: adm_qps[i],
            speedup: adm_qps[i] / adm_qps[0],
        });
    }
    let admission_overhead_pct = 100.0 * (1.0 - adm_qps[1] / adm_qps[0]);
    println!(
        "  admission overhead: {admission_overhead_pct:.2}% qps regression with the \
         bounded-queue front enabled, no faults (acceptance gate: < 3%)"
    );

    if let Some(path) = json_path {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"fig_throughput\",");
        let _ = writeln!(json, "  \"hardware_threads\": {hw},");
        let _ = writeln!(json, "  \"mesh_vertices\": {},", mesh.num_vertices());
        let _ = writeln!(json, "  \"selectivity\": {SELECTIVITY},");
        let _ = writeln!(json, "  \"standing_delta_hit_rate\": {delta_hit_rate:.3},");
        let _ = writeln!(
            json,
            "  \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2},"
        );
        let _ = writeln!(
            json,
            "  \"admission_overhead_pct\": {admission_overhead_pct:.2},"
        );
        let _ = writeln!(json, "  \"baseline_pr2\": {BASELINE_PR2},");
        let _ = writeln!(json, "  \"entries\": [");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            // Each mode family is normalised against its own baseline —
            // name the field accordingly so cross-mode tooling can't
            // read the wrong ratio.
            let speedup_key = if e.mode.starts_with("ring") {
                "speedup_vs_stop_the_world"
            } else if e.mode.starts_with("shared") {
                "speedup_vs_independent_pool"
            } else if e.mode.starts_with("seedcache") {
                "speedup_vs_uncached_engine"
            } else if e.mode.starts_with("standing") {
                "speedup_vs_requery"
            } else if e.mode.starts_with("telemetry") {
                "speedup_vs_uninstrumented"
            } else if e.mode.starts_with("admission") {
                "speedup_vs_unadmitted"
            } else {
                "speedup_vs_sequential"
            };
            let _ = writeln!(
                json,
                "    {{\"mode\": \"{}\", \"workers\": {}, \"batch\": {}, \"ring_depth\": {}, \"qps\": {:.0}, \"{speedup_key}\": {:.3}}}{comma}",
                e.mode, e.workers, e.batch, e.depth, e.qps, e.speedup
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write json baseline");
        println!("baseline written to {path}");
    }
}
