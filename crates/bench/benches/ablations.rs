//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//!
//! * `ablation_visited` — epoch-stamped array vs hash-set visited set;
//! * `ablation_crawl_order` — BFS (paper) vs DFS expansion;
//! * `ablation_surface_layout` — dense id vector vs hash-map iteration
//!   during the probe;
//! * `ablation_tuning` — octree bucket capacity and R-tree fanout sweeps
//!   (the paper's §V-A parameter sweeps).
//!
//! The planner-batch hoisting ablation lives in its own
//! `planner_batch` bench: it uses interleaved A/B windows to stay
//! above this container's scheduler jitter, which the group's shared
//! criterion budget cannot.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_bench::workload::QueryGen;
use octopus_core::{CrawlOrder, Octopus, VisitedStrategy};
use octopus_geom::{Aabb, VertexId};
use octopus_index::rtree::{point_key, LeafEntry};
use octopus_index::{DynamicIndex, Octree, RTree};
use octopus_meshgen::{neuron, NeuroLevel};
use std::collections::HashMap;

fn benches(c: &mut Criterion) {
    let mesh = neuron(NeuroLevel::L3, 0.6).expect("neuron");
    let mut gen = QueryGen::new(&mesh, 3);
    // Crawl-heavy queries for the traversal ablations.
    let queries = gen.batch_with_selectivity(10, 0.01);

    // --- Visited-set strategy.
    for (name, strategy) in [
        ("epoch_array", VisitedStrategy::EpochArray),
        ("hash_set", VisitedStrategy::HashSet),
    ] {
        let mut octopus = Octopus::with_strategy(&mesh, strategy).expect("surface");
        c.bench_function(&format!("ablation_visited/{name}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for q in &queries {
                    out.clear();
                    octopus.query(&mesh, q, &mut out);
                }
                out.len()
            })
        });
    }

    // --- Crawl order.
    for (name, order) in [("bfs", CrawlOrder::Bfs), ("dfs", CrawlOrder::Dfs)] {
        let mut octopus = Octopus::new(&mesh).expect("surface");
        octopus.set_crawl_order(order);
        c.bench_function(&format!("ablation_crawl_order/{name}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for q in &queries {
                    out.clear();
                    octopus.query(&mesh, q, &mut out);
                }
                out.len()
            })
        });
    }

    // --- Surface iteration layout: dense sorted id vector (the
    // SurfaceIndex design) vs iterating a HashMap directly (the paper's
    // literal description).
    {
        let surface = mesh.surface().expect("surface");
        let dense: Vec<VertexId> = surface.vertices().to_vec();
        let map: HashMap<VertexId, ()> = dense.iter().map(|&v| (v, ())).collect();
        let probe_q: Aabb = queries[0];
        let positions = mesh.positions();
        c.bench_function("ablation_surface_layout/dense_vec", |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for (i, &v) in dense.iter().enumerate() {
                    if i + octopus_geom::mem::PREFETCH_DISTANCE < dense.len() {
                        octopus_geom::mem::prefetch_read(
                            positions,
                            dense[i + octopus_geom::mem::PREFETCH_DISTANCE] as usize,
                        );
                    }
                    hits += u32::from(probe_q.contains(positions[v as usize]));
                }
                hits
            })
        });
        c.bench_function("ablation_surface_layout/hash_map", |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for &v in map.keys() {
                    hits += u32::from(probe_q.contains(positions[v as usize]));
                }
                hits
            })
        });
    }

    // --- Octree bucket-capacity sweep (paper: 10 000 chosen by sweep).
    for bucket in [1_000usize, 10_000, 50_000] {
        c.bench_function(&format!("ablation_tuning/octree_bucket_{bucket}"), |b| {
            let mut tree = Octree::with_bucket_capacity(bucket);
            let mut out = Vec::new();
            b.iter(|| {
                tree.on_step(mesh.positions());
                for q in &queries {
                    out.clear();
                    tree.query(q, mesh.positions(), &mut out);
                }
                out.len()
            })
        });
    }

    // --- R-tree fanout sweep (paper: 110 chosen by sweep).
    for fanout in [16usize, 110, 256] {
        let entries: Vec<LeafEntry> = mesh
            .positions()
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                id: i as u32,
                key: point_key(*p),
            })
            .collect();
        c.bench_function(&format!("ablation_tuning/rtree_fanout_{fanout}"), |b| {
            let mut tree = RTree::with_fanout(fanout);
            let mut out = Vec::new();
            b.iter(|| {
                tree.bulk_load(entries.clone());
                for q in &queries {
                    out.clear();
                    tree.query_keys(q, &mut out);
                }
                out.len()
            })
        });
    }
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = benches
}
criterion_main!(ablations);
