//! Criterion micro-bench for Fig. 12: probe cost vs surface-sample
//! fraction (the approximation's speedup source).

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_bench::workload::QueryGen;
use octopus_core::{ApproxOctopus, SurfaceIndex};
use octopus_meshgen::{neuron, NeuroLevel};

fn benches(c: &mut Criterion) {
    let mesh = neuron(NeuroLevel::L3, 0.6).expect("neuron");
    let surface = SurfaceIndex::build(&mesh).expect("surface");
    let mut gen = QueryGen::new(&mesh, 11);
    let queries = gen.batch_with_selectivity(15, 0.001);

    for fraction in [1.0f64, 0.1, 0.01, 0.001] {
        let mut approx =
            ApproxOctopus::from_surface_index(&surface, mesh.num_vertices(), fraction, 3);
        c.bench_function(&format!("fig12/approx_{:.3}pct", fraction * 100.0), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for q in &queries {
                    out.clear();
                    approx.query(&mesh, q, &mut out);
                }
                out.len()
            })
        });
    }
}

criterion_group! {
    name = fig12;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = benches
}
criterion_main!(fig12);
