//! `fig13_hilbert`: crawl cost under five vertex layouts — identity
//! (generator order), scrambled (worst case, an arbitrary application
//! order), Morton, Hilbert (the paper's §IV-H1 choice), and the v2
//! cache-oblivious adjacency bisection.
//!
//! Fig. 13's claim is that sorting vertices along a space-filling curve
//! makes the crawl's pointer-chasing cache-friendly. Each layout is
//! benchmarked with the same geometry and the same queries; alongside
//! the timings two locality models are reported per layout:
//!
//! * `adjacency_locality` — the **legacy v1 proxy** (mean adjacent-id
//!   distance). Kept deliberately: it is the metric under which Hilbert
//!   looks ~2× better than identity while crawling slower — the
//!   paradox that motivated the v2 metric.
//! * the **v2 cache-line model** (`cache_line_stats` +
//!   `reuse_distance_histogram`) — line-crossing ratio, mean distinct
//!   foreign 64-byte lines per neighbourhood, and the fraction of
//!   simulated-crawl line touches with LRU stack distance < 512 lines
//!   (a 32 KiB L1's worth).
//!
//! Run directly, or with `--json <path>` to record the committed
//! `BENCH_fig13.json` artifact:
//!
//! ```bash
//! cargo bench -p octopus-bench --bench fig13_hilbert
//! cargo bench -p octopus-bench --bench fig13_hilbert -- --json BENCH_fig13.json
//! ```

use octopus_bench::workload::QueryGen;
use octopus_core::layout::{
    adjacency_locality, cache_line_stats, cache_oblivious_layout, hilbert_layout, morton_layout,
    reuse_distance_histogram,
};
use octopus_core::Octopus;
use octopus_geom::VertexId;
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measurement budget per layout.
const BUDGET: Duration = Duration::from_millis(1500);
/// Queries per pass — large enough that the crawl dominates.
const QUERIES: usize = 10;
const SELECTIVITY: f64 = 0.01;
/// L1-sized LRU window for the reuse-distance summary (512 × 64 B =
/// 32 KiB).
const L1_LINES: u64 = 512;

struct Entry {
    layout: &'static str,
    locality: f64,
    crossing_ratio: f64,
    extra_lines: f64,
    reuse_within_l1: f64,
    crawl_us_per_query: f64,
    total_us_per_query: f64,
    speedup_vs_scrambled: f64,
    speedup_vs_identity: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json <path>"));
        }
    }

    let identity = neuron(NeuroLevel::L5, 1.2).expect("neuron");
    // Scramble to simulate an arbitrary application layout.
    let mut perm: Vec<VertexId> = (0..identity.num_vertices() as u32).collect();
    octopus_geom::rng::SplitMix64::new(13).shuffle(&mut perm);
    let scrambled = identity.permute_vertices(&perm);
    let (hilbert, _) = hilbert_layout(&scrambled);
    let (morton, _) = morton_layout(&scrambled);
    let (cache_oblivious, _) = cache_oblivious_layout(&scrambled);

    // Same geometry in every layout → identical query boxes apply.
    let mut gen = QueryGen::new(&scrambled, 5);
    let queries = gen.batch_with_selectivity(QUERIES, SELECTIVITY);

    println!(
        "fig13_hilbert: {} vertices, {} queries at selectivity {SELECTIVITY}",
        identity.num_vertices(),
        queries.len()
    );
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8} {:>8}",
        "layout",
        "id-dist",
        "crossing",
        "xlines",
        "reuse<L1",
        "crawl µs/q",
        "total µs/q",
        "vs scr",
        "vs id"
    );

    let layouts: [(&'static str, &Mesh); 5] = [
        ("scrambled", &scrambled),
        ("identity", &identity),
        ("morton", &morton),
        ("hilbert", &hilbert),
        ("cache_oblivious", &cache_oblivious),
    ];
    // Passes are interleaved round-robin across layouts, not measured
    // one layout at a time: machine-level drift (frequency scaling,
    // noisy neighbours) over the bench's wall time then biases every
    // layout equally instead of whichever one ran during the slow
    // minute — the per-layout *ratios* are what fig. 13 is about.
    let mut octopi: Vec<Octopus> = layouts
        .iter()
        .map(|(_, mesh)| Octopus::new(mesh).expect("surface"))
        .collect();
    let mut out = Vec::new();
    // Warm-up pass over every layout.
    for ((_, mesh), octopus) in layouts.iter().zip(octopi.iter_mut()) {
        for q in &queries {
            out.clear();
            octopus.query(mesh, q, &mut out);
        }
    }
    let mut crawl = [Duration::ZERO; 5];
    let mut total = [Duration::ZERO; 5];
    let t0 = Instant::now();
    let mut passes = 0u32;
    while t0.elapsed() < BUDGET.saturating_mul(layouts.len() as u32) || passes == 0 {
        for (k, ((_, mesh), octopus)) in layouts.iter().zip(octopi.iter_mut()).enumerate() {
            for q in &queries {
                out.clear();
                let stats = octopus.query(mesh, q, &mut out);
                std::hint::black_box(out.len());
                crawl[k] += stats.crawling;
                total[k] += stats.total();
            }
        }
        passes += 1;
    }
    let n = f64::from(passes) * queries.len() as f64;
    let mut entries: Vec<Entry> = Vec::new();
    for (k, (name, mesh)) in layouts.iter().enumerate() {
        let line_stats = cache_line_stats(mesh);
        let hist = reuse_distance_histogram(mesh);
        entries.push(Entry {
            layout: name,
            locality: adjacency_locality(mesh),
            crossing_ratio: line_stats.crossing_ratio,
            extra_lines: line_stats.extra_lines_per_vertex,
            reuse_within_l1: hist.fraction_within(L1_LINES),
            crawl_us_per_query: crawl[k].as_secs_f64() * 1e6 / n,
            total_us_per_query: total[k].as_secs_f64() * 1e6 / n,
            speedup_vs_scrambled: 1.0,
            speedup_vs_identity: 1.0,
        });
    }
    let scrambled_crawl = entries[0].crawl_us_per_query;
    let identity_crawl = entries[1].crawl_us_per_query;
    for e in &mut entries {
        e.speedup_vs_scrambled = scrambled_crawl / e.crawl_us_per_query;
        e.speedup_vs_identity = identity_crawl / e.crawl_us_per_query;
        println!(
            "{:<16} {:>10.1} {:>9.3} {:>9.2} {:>9.3} {:>11.1} {:>11.1} {:>7.2}x {:>7.2}x",
            e.layout,
            e.locality,
            e.crossing_ratio,
            e.extra_lines,
            e.reuse_within_l1,
            e.crawl_us_per_query,
            e.total_us_per_query,
            e.speedup_vs_scrambled,
            e.speedup_vs_identity
        );
    }

    // The finding the v2 metric exists, and the crawl hot path was
    // rebuilt, to explain: the id-distance proxy said Hilbert should
    // crush identity, yet under the original branchy crawl identity won
    // every time. The confounder was never memory at all — it was the
    // visited-check branch, whose outcome under the generator order
    // correlates with BFS wave arrival (predictable) and under any
    // locality-optimised order does not (a coin flip per neighbour).
    // The branchless SoA hot path removes that cost, and the clock then
    // follows the cache-line metric: fewer extra lines per vertex means
    // a faster crawl, and the cache-oblivious layout beats identity.
    let diagnosis = format!(
        "id-distance proxy misleads twice: hilbert improves it {:.1}x over identity, \
         yet under the old branchy crawl identity still won — the visited-check \
         branch predicts well only when neighbour order correlates with BFS wave \
         arrival (true for the generator order, false for any locality-optimised \
         permutation), a cost no locality metric can see. With the branchless SoA \
         hot path the clock follows the cache-line metric instead: identity touches \
         {:.2} extra lines/vertex, cache_oblivious {:.2}, and cache_oblivious \
         crawls {:.2}x faster than identity.",
        entries[1].locality / entries[3].locality,
        entries[1].extra_lines,
        entries[4].extra_lines,
        entries[4].speedup_vs_identity,
    );
    println!("diagnosis: {diagnosis}");

    if let Some(path) = json_path {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"fig13_hilbert\",");
        let _ = writeln!(json, "  \"mesh_vertices\": {},", identity.num_vertices());
        let _ = writeln!(json, "  \"queries\": {QUERIES},");
        let _ = writeln!(json, "  \"selectivity\": {SELECTIVITY},");
        let _ = writeln!(json, "  \"reuse_window_lines\": {L1_LINES},");
        let _ = writeln!(json, "  \"diagnosis\": \"{diagnosis}\",");
        let _ = writeln!(json, "  \"entries\": [");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"layout\": \"{}\", \"adjacency_locality\": {:.1}, \
                 \"line_crossing_ratio\": {:.4}, \"extra_lines_per_vertex\": {:.3}, \
                 \"reuse_within_l1\": {:.4}, \"crawl_us_per_query\": {:.2}, \
                 \"total_us_per_query\": {:.2}, \"crawl_speedup_vs_scrambled\": {:.3}, \
                 \"crawl_speedup_vs_identity\": {:.3}}}{comma}",
                e.layout,
                e.locality,
                e.crossing_ratio,
                e.extra_lines,
                e.reuse_within_l1,
                e.crawl_us_per_query,
                e.total_us_per_query,
                e.speedup_vs_scrambled,
                e.speedup_vs_identity
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write json artifact");
        println!("artifact written to {path}");
    }
}
