//! Criterion micro-bench for Fig. 13: crawl cost under three vertex
//! layouts — scrambled (worst case), Morton, Hilbert (paper's choice).

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_bench::workload::QueryGen;
use octopus_core::layout::{hilbert_layout, morton_layout};
use octopus_core::Octopus;
use octopus_geom::VertexId;
use octopus_meshgen::{neuron, NeuroLevel};

fn benches(c: &mut Criterion) {
    let base = neuron(NeuroLevel::L4, 0.8).expect("neuron");
    // Scramble to simulate an arbitrary application layout.
    let mut perm: Vec<VertexId> = (0..base.num_vertices() as u32).collect();
    octopus_geom::rng::SplitMix64::new(13).shuffle(&mut perm);
    let scrambled = base.permute_vertices(&perm);
    let (hilbert, _) = hilbert_layout(&scrambled);
    let (morton, _) = morton_layout(&scrambled);

    // Larger queries so the crawl dominates (the layout's beneficiary).
    let mut gen = QueryGen::new(&scrambled, 5);
    let queries = gen.batch_with_selectivity(10, 0.01);

    for (name, mesh) in [
        ("scrambled", &scrambled),
        ("morton", &morton),
        ("hilbert", &hilbert),
    ] {
        let mut octopus = Octopus::new(mesh).expect("surface");
        c.bench_function(&format!("fig13/crawl_{name}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for q in &queries {
                    out.clear();
                    octopus.query(mesh, q, &mut out);
                }
                out.len()
            })
        });
    }
}

criterion_group! {
    name = fig13;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(2000));
    targets = benches
}
criterion_main!(fig13);
