//! `fig13_hilbert`: crawl cost under four vertex layouts — identity
//! (generator order), scrambled (worst case, an arbitrary application
//! order), Morton, and Hilbert (the paper's §IV-H1 choice).
//!
//! Fig. 13's claim is that sorting vertices along a space-filling curve
//! makes the crawl's pointer-chasing cache-friendly. Each layout is
//! benchmarked with the same geometry and the same queries; alongside
//! the timings the mean adjacent-id distance (`adjacency_locality`, the
//! cache-locality proxy) is reported. Run directly, or with
//! `--json <path>` to record the committed `BENCH_fig13.json` artifact:
//!
//! ```bash
//! cargo bench -p octopus-bench --bench fig13_hilbert
//! cargo bench -p octopus-bench --bench fig13_hilbert -- --json BENCH_fig13.json
//! ```

use octopus_bench::workload::QueryGen;
use octopus_core::layout::{adjacency_locality, hilbert_layout, morton_layout};
use octopus_core::Octopus;
use octopus_geom::VertexId;
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measurement budget per layout.
const BUDGET: Duration = Duration::from_millis(1500);
/// Queries per pass — large enough that the crawl dominates.
const QUERIES: usize = 10;
const SELECTIVITY: f64 = 0.01;

struct Entry {
    layout: &'static str,
    locality: f64,
    crawl_us_per_query: f64,
    total_us_per_query: f64,
    speedup_vs_scrambled: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json <path>"));
        }
    }

    let identity = neuron(NeuroLevel::L4, 0.8).expect("neuron");
    // Scramble to simulate an arbitrary application layout.
    let mut perm: Vec<VertexId> = (0..identity.num_vertices() as u32).collect();
    octopus_geom::rng::SplitMix64::new(13).shuffle(&mut perm);
    let scrambled = identity.permute_vertices(&perm);
    let (hilbert, _) = hilbert_layout(&scrambled);
    let (morton, _) = morton_layout(&scrambled);

    // Same geometry in every layout → identical query boxes apply.
    let mut gen = QueryGen::new(&scrambled, 5);
    let queries = gen.batch_with_selectivity(QUERIES, SELECTIVITY);

    println!(
        "fig13_hilbert: {} vertices, {} queries at selectivity {SELECTIVITY}",
        identity.num_vertices(),
        queries.len()
    );
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>9}",
        "layout", "locality", "crawl µs/query", "total µs/query", "speedup"
    );

    let layouts: [(&'static str, &Mesh); 4] = [
        ("scrambled", &scrambled),
        ("identity", &identity),
        ("morton", &morton),
        ("hilbert", &hilbert),
    ];
    let mut entries: Vec<Entry> = Vec::new();
    for (name, mesh) in layouts {
        let mut octopus = Octopus::new(mesh).expect("surface");
        let mut out = Vec::new();
        // Warm-up pass.
        for q in &queries {
            out.clear();
            octopus.query(mesh, q, &mut out);
        }
        let t0 = Instant::now();
        let mut crawl = Duration::ZERO;
        let mut total = Duration::ZERO;
        let mut passes = 0u32;
        while t0.elapsed() < BUDGET || passes == 0 {
            for q in &queries {
                out.clear();
                let stats = octopus.query(mesh, q, &mut out);
                std::hint::black_box(out.len());
                crawl += stats.crawling;
                total += stats.total();
            }
            passes += 1;
        }
        let n = f64::from(passes) * queries.len() as f64;
        let entry = Entry {
            layout: name,
            locality: adjacency_locality(mesh),
            crawl_us_per_query: crawl.as_secs_f64() * 1e6 / n,
            total_us_per_query: total.as_secs_f64() * 1e6 / n,
            speedup_vs_scrambled: entries.first().map_or(1.0, |s| {
                s.crawl_us_per_query / (crawl.as_secs_f64() * 1e6 / n)
            }),
        };
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>14.1} {:>8.2}x",
            entry.layout,
            entry.locality,
            entry.crawl_us_per_query,
            entry.total_us_per_query,
            entry.speedup_vs_scrambled
        );
        entries.push(entry);
    }

    if let Some(path) = json_path {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"fig13_hilbert\",");
        let _ = writeln!(json, "  \"mesh_vertices\": {},", identity.num_vertices());
        let _ = writeln!(json, "  \"queries\": {QUERIES},");
        let _ = writeln!(json, "  \"selectivity\": {SELECTIVITY},");
        let _ = writeln!(json, "  \"entries\": [");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"layout\": \"{}\", \"adjacency_locality\": {:.1}, \"crawl_us_per_query\": {:.2}, \"total_us_per_query\": {:.2}, \"crawl_speedup_vs_scrambled\": {:.3}}}{comma}",
                e.layout, e.locality, e.crawl_us_per_query, e.total_us_per_query, e.speedup_vs_scrambled
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write json artifact");
        println!("artifact written to {path}");
    }
}
