//! `planner_batch`: the `Planner::decide_batch` hoisting ablation.
//!
//! `decide_batch` hoists the per-batch invariants out of the decision
//! loop — the histogram's grid geometry (`SelectivityHistogram::grid`:
//! clamped extents, bucket sizes, and the reciprocal bucket volume
//! that replaces the per-bucket overlap division), the Eq.-5 speedup
//! factors (`CostModel::speedup_terms`) and the cached Eq.-6
//! crossover. The naive baseline (`decide_batch_unhoisted`, the
//! pre-hoisting code kept verbatim) produces decisions identical up to
//! the histogram's inherent f32 precision — asserted in the planner's
//! unit suite — so this bench isolates pure loop cost. Recorded ~1.5×
//! on the dev container in both regimes (bucket-heavy queries
//! additionally avoid the per-bucket geometry re-derivation).
//!
//! Measurement is interleaved A/B (alternating single rounds): on a
//! shared 1-hardware-thread container, back-to-back windows drift by
//! more than the effect, interleaving cancels that.

use octopus_bench::workload::QueryGen;
use octopus_core::{CostModel, Planner};
use octopus_meshgen::{neuron, NeuroLevel};
use std::time::{Duration, Instant};

const ROUNDS: u32 = 600;
const BATCH: usize = 256;

/// Interleaved A/B timing: alternating single-round measurements cancel
/// the slow clock-frequency / load drift that dominates back-to-back
/// windows on a shared 1-hardware-thread container.
fn time_pair(
    rounds: u32,
    mut a: impl FnMut() -> usize,
    mut b: impl FnMut() -> usize,
) -> (Duration, Duration) {
    for _ in 0..rounds / 4 {
        std::hint::black_box(a());
        std::hint::black_box(b());
    }
    let (mut ta, mut tb) = (Duration::ZERO, Duration::ZERO);
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(a());
        ta += t0.elapsed();
        let t1 = Instant::now();
        std::hint::black_box(b());
        tb += t1.elapsed();
    }
    (ta, tb)
}

fn main() {
    let mesh = neuron(NeuroLevel::L3, 0.6).expect("neuron");
    let mut gen = QueryGen::new(&mesh, 0x9A7C);
    println!(
        "planner_batch: {} vertices, batch {BATCH}, {ROUNDS} rounds",
        mesh.num_vertices()
    );
    for (label, res, sel) in [
        ("bucket-heavy (res 16, sel 1%)", 16usize, 0.01f64),
        ("sub-bucket   (res 16, sel 0.01%)", 16, 0.0001),
    ] {
        let planner = Planner::new(&mesh, CostModel::paper_constants(), res).expect("planner");
        let batch = gen.batch_with_selectivity(BATCH, sel);
        // Sanity: both paths agree (to the documented f32-precision
        // tolerance of the reciprocal-volume hoist) before we time
        // them.
        let a = planner.decide_batch(&batch);
        let b = planner.decide_batch_unhoisted(&batch);
        assert!(a.iter().zip(&b).all(|(x, y)| {
            x.strategy == y.strategy
                && (x.estimated_selectivity - y.estimated_selectivity).abs()
                    <= 1e-5 * y.estimated_selectivity.max(1e-300)
        }));

        let (hoisted, naive) = time_pair(
            ROUNDS,
            || planner.decide_batch(&batch).len(),
            || planner.decide_batch_unhoisted(&batch).len(),
        );
        println!(
            "  {label}: hoisted {:>9.1?}  naive {:>9.1?}  speedup {:.2}x",
            hoisted / ROUNDS,
            naive / ROUNDS,
            naive.as_secs_f64() / hoisted.as_secs_f64()
        );
    }
}
