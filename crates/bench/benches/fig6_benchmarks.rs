//! Criterion micro-bench for Fig. 6: per-time-step cost (maintenance +
//! one standard query batch) of every approach on a neuroscience mesh.
//!
//! The full table comes from `--bin experiments fig6`; this bench gives
//! statistically robust per-approach numbers at a fixed small scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use octopus_bench::workload::QueryGen;
use octopus_core::Octopus;
use octopus_geom::Aabb;
use octopus_index::{DynamicIndex, LinearScan, LurTree, Octree, QuTrade};
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Deformation, SmoothRandomField};

const SCALE: f32 = 0.6;
const QUERIES: usize = 15;
const SELECTIVITY: f64 = 0.001;

struct Setup {
    mesh: Mesh,
    queries: Vec<Aabb>,
}

fn setup() -> Setup {
    let mut mesh = neuron(NeuroLevel::L3, SCALE).expect("neuron");
    let rest = mesh.positions().to_vec();
    SmoothRandomField::new(0.004, 4, 1).apply_step(1, &rest, mesh.positions_mut());
    let mut gen = QueryGen::new(&mesh, 42);
    let queries = gen.batch_with_selectivity(QUERIES, SELECTIVITY);
    Setup { mesh, queries }
}

fn bench_octopus(c: &mut Criterion, s: &Setup) {
    let mut octopus = Octopus::new(&s.mesh).expect("surface");
    c.bench_function("fig6/octopus_step", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            // No maintenance; just the query batch.
            for q in &s.queries {
                out.clear();
                octopus.query(&s.mesh, q, &mut out);
            }
            out.len()
        })
    });
}

fn bench_index(c: &mut Criterion, s: &Setup, name: &str, make: impl Fn() -> Box<dyn DynamicIndex>) {
    // Per-step cost = maintenance (on_step) + query batch.
    c.bench_function(&format!("fig6/{name}_step"), |b| {
        b.iter_batched(
            || {
                let mut idx = make();
                idx.on_step(s.mesh.positions());
                idx
            },
            |mut idx| {
                idx.on_step(s.mesh.positions());
                let mut out = Vec::new();
                for q in &s.queries {
                    out.clear();
                    idx.query(q, s.mesh.positions(), &mut out);
                }
                out.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    let s = setup();
    bench_octopus(c, &s);
    bench_index(c, &s, "linear_scan", || Box::new(LinearScan::new()));
    bench_index(c, &s, "octree", || Box::new(Octree::new()));
    bench_index(c, &s, "lur_tree", || {
        let mut t = LurTree::new();
        t.build(s.mesh.positions());
        Box::new(t)
    });
    bench_index(c, &s, "qu_trade", || {
        let mut t = QuTrade::new(0.008);
        t.build(s.mesh.positions());
        Box::new(t)
    });
}

criterion_group! {
    name = fig6;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = benches
}
criterion_main!(fig6);
