//! Criterion micro-bench for Fig. 9: query execution on a convex basin —
//! OCTOPUS-CON (no probe) vs OCTOPUS (probe) vs linear scan, plus the
//! grid-resolution effect on the directed walk.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_bench::workload::QueryGen;
use octopus_core::{Octopus, OctopusCon};
use octopus_geom::Aabb;
use octopus_index::{DynamicIndex, LinearScan};
use octopus_mesh::Mesh;
use octopus_meshgen::{basin, BasinResolution};

const SCALE: f32 = 0.6;

fn setup() -> (Mesh, Vec<Aabb>) {
    let mesh = basin(BasinResolution::Sf2, SCALE).expect("basin");
    let mut gen = QueryGen::new(&mesh, 7);
    let queries = gen.batch_with_selectivity(15, 0.001);
    (mesh, queries)
}

fn benches(c: &mut Criterion) {
    let (mesh, queries) = setup();

    let mut con = OctopusCon::new(&mesh);
    c.bench_function("fig9/octopus_con", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for q in &queries {
                out.clear();
                con.query(&mesh, q, &mut out);
            }
            out.len()
        })
    });

    let mut octopus = Octopus::new(&mesh).expect("surface");
    c.bench_function("fig9/octopus_full", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for q in &queries {
                out.clear();
                octopus.query(&mesh, q, &mut out);
            }
            out.len()
        })
    });

    let scan = LinearScan::new();
    c.bench_function("fig9/linear_scan", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for q in &queries {
                out.clear();
                scan.query(q, mesh.positions(), &mut out);
            }
            out.len()
        })
    });

    // Fig. 9(c): grid resolution → directed-walk length → query time.
    for res in [2usize, 10, 18] {
        let mut con = OctopusCon::with_resolution(&mesh, res);
        c.bench_function(&format!("fig9/con_grid_{}cells", res * res * res), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for q in &queries {
                    out.clear();
                    con.query(&mesh, q, &mut out);
                }
                out.len()
            })
        });
    }
}

criterion_group! {
    name = fig9;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = benches
}
criterion_main!(fig9);
