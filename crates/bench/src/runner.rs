//! The monitor loop driving all approaches over identical workloads.
//!
//! Methodology mirrors §V-A: "Range queries are executed at each time
//! step after simulation completes updating the mesh. … We measure the
//! total query response time, i.e., the time it takes to execute all
//! range queries for all time steps, including the time it takes to
//! rebuild or update the index." Preprocessing (initial builds) is
//! excluded, also as in the paper.
//!
//! Every approach answers the *same* queries on the *same* simulation
//! states; the runner cross-checks result counts between approaches on
//! every query, so a silently wrong competitor fails loudly.

use crate::workload::QueryGen;
use octopus_core::{ApproxOctopus, Octopus, OctopusCon, PhaseTimings};
use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, VertexId};
use octopus_index::DynamicIndex;
use octopus_mesh::{Mesh, MeshError};
use octopus_sim::Simulation;
use std::time::{Duration, Instant};

/// A query-execution approach under measurement.
pub enum Approach {
    /// OCTOPUS (surface probe + walk + crawl).
    Octopus(Octopus),
    /// OCTOPUS-CON (stale grid + walk + crawl; convex meshes).
    OctopusCon(OctopusCon),
    /// OCTOPUS with a sampled surface probe (approximate results).
    Approx(ApproxOctopus),
    /// Any classical index behind [`DynamicIndex`].
    Index(Box<dyn DynamicIndex>),
}

impl Approach {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Approach::Octopus(_) => "OCTOPUS".into(),
            Approach::OctopusCon(_) => "OCTOPUS-CON".into(),
            Approach::Approx(a) => format!("OCTOPUS-approx({}%)", a.fraction() * 100.0),
            Approach::Index(i) => i.name().into(),
        }
    }

    /// True when the approach may legitimately return fewer results
    /// (excluded from exactness cross-checks).
    pub fn is_approximate(&self) -> bool {
        matches!(self, Approach::Approx(_))
    }

    /// True when the approach does per-step maintenance work. The
    /// OCTOPUS family does none for deformation — the measured claim —
    /// so the runner charges it exactly zero instead of timer noise.
    fn has_maintenance(&self) -> bool {
        matches!(self, Approach::Index(_))
    }

    fn on_step(&mut self, mesh: &Mesh) {
        if let Approach::Index(i) = self {
            i.on_step(mesh.positions());
        }
    }

    fn query(&mut self, mesh: &Mesh, q: &Aabb, out: &mut Vec<VertexId>) -> PhaseTimings {
        match self {
            Approach::Octopus(o) => o.query(mesh, q, out),
            Approach::OctopusCon(o) => o.query(mesh, q, out),
            Approach::Approx(o) => o.query(mesh, q, out),
            Approach::Index(i) => {
                i.query(q, mesh.positions(), out);
                PhaseTimings {
                    results: out.len(),
                    ..Default::default()
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Approach::Octopus(o) => o.memory_bytes(),
            Approach::OctopusCon(o) => o.memory_bytes(),
            Approach::Approx(o) => o.memory_bytes(),
            Approach::Index(i) => i.memory_bytes(),
        }
    }

    fn on_restructure(&mut self, mesh: &Mesh, delta: &octopus_mesh::SurfaceDelta) {
        if let Approach::Octopus(o) = self {
            o.on_restructure(mesh, delta);
        }
    }
}

/// Accumulated measurements for one approach over a whole scenario.
#[derive(Clone, Debug)]
pub struct ApproachTotals {
    /// Approach display name.
    pub name: String,
    /// Total per-step maintenance time (rebuilds / lazy updates).
    pub maintenance: Duration,
    /// Total query execution time.
    pub query_time: Duration,
    /// Accumulated OCTOPUS phase timings (zeros for classical indexes).
    pub phases: PhaseTimings,
    /// Peak index memory across steps.
    pub memory_bytes: usize,
    /// Total result vertices over all queries.
    pub total_results: usize,
    /// Number of queries executed.
    pub queries: usize,
}

impl ApproachTotals {
    /// The paper's headline metric: maintenance + query time.
    pub fn total_response(&self) -> Duration {
        self.maintenance + self.query_time
    }
}

/// Scenario outcome: per-approach totals plus workload statistics.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// One entry per approach, in input order.
    pub approaches: Vec<ApproachTotals>,
    /// Mean *actual* selectivity of the executed queries.
    pub mean_selectivity: f64,
    /// Total queries executed.
    pub total_queries: usize,
}

impl ScenarioResult {
    /// Totals for a named approach.
    pub fn get(&self, name: &str) -> Option<&ApproachTotals> {
        self.approaches.iter().find(|a| a.name == name)
    }

    /// response(a) / response(b) — e.g. speedup of OCTOPUS over the scan
    /// is `speedup_of("OCTOPUS", "LinearScan")`.
    pub fn speedup_of(&self, fast: &str, slow: &str) -> f64 {
        let f = self
            .get(fast)
            .expect("fast approach present")
            .total_response();
        let s = self
            .get(slow)
            .expect("slow approach present")
            .total_response();
        s.as_secs_f64() / f.as_secs_f64().max(1e-12)
    }
}

/// Per-step query supplier: given (step, mesh) returns the monitoring
/// queries for that step (different every step, like the paper's
/// monitors).
pub type QuerySupplier<'a> = dyn FnMut(u32, &Mesh) -> Vec<Aabb> + 'a;

/// Runs the monitor loop of Fig. 1(e).
///
/// For each of `steps` time steps: the simulation rewrites all positions
/// (untimed — it is the black box); every approach absorbs the update
/// (timed as maintenance); every approach answers the step's queries
/// (timed as query time). Exact approaches must agree on every result
/// count or the run panics.
pub fn run_scenario(
    sim: &mut Simulation,
    steps: u32,
    queries: &mut QuerySupplier,
    approaches: &mut [Approach],
) -> Result<ScenarioResult, MeshError> {
    let mut totals: Vec<ApproachTotals> = approaches
        .iter()
        .map(|a| ApproachTotals {
            name: a.name(),
            maintenance: Duration::ZERO,
            query_time: Duration::ZERO,
            phases: PhaseTimings::default(),
            memory_bytes: 0,
            total_results: 0,
            queries: 0,
        })
        .collect();
    let mut out: Vec<VertexId> = Vec::new();
    let mut selectivity_sum = 0.0f64;
    let mut total_queries = 0usize;

    for step in 1..=steps {
        let delta = sim.step()?;
        if !delta.is_empty() {
            for a in approaches.iter_mut() {
                a.on_restructure(sim.mesh(), &delta);
            }
        }
        let step_queries = queries(step, sim.mesh());
        let num_vertices = sim.mesh().num_vertices().max(1);

        for (a, t) in approaches.iter_mut().zip(&mut totals) {
            if a.has_maintenance() {
                let m0 = Instant::now();
                a.on_step(sim.mesh());
                t.maintenance += m0.elapsed();
            }
            t.memory_bytes = t.memory_bytes.max(a.memory_bytes());
        }

        // Each approach answers the whole step batch back-to-back — a
        // real monitoring system runs ONE approach, so interleaving them
        // per query would let competitors evict each other's caches and
        // distort exactly the gather-sensitive phase the paper measures.
        // Cross-checks compare recorded result counts afterwards.
        let mut reference: Option<(String, Vec<usize>)> = None;
        for (a, t) in approaches.iter_mut().zip(&mut totals) {
            let mut counts = Vec::with_capacity(step_queries.len());
            for q in &step_queries {
                out.clear();
                let q0 = Instant::now();
                let phases = a.query(sim.mesh(), q, &mut out);
                t.query_time += q0.elapsed();
                t.phases.accumulate(&phases);
                t.total_results += out.len();
                t.queries += 1;
                counts.push(out.len());
            }
            if a.is_approximate() {
                continue;
            }
            match &reference {
                None => reference = Some((t.name.clone(), counts)),
                Some((ref_name, ref_counts)) => {
                    for (qi, (got, want)) in counts.iter().zip(ref_counts).enumerate() {
                        assert_eq!(
                            got, want,
                            "step {step}, query {qi}: '{}' disagrees with '{}' on {:?}",
                            t.name, ref_name, step_queries[qi]
                        );
                    }
                }
            }
        }
        if let Some((_, counts)) = &reference {
            for &c in counts {
                selectivity_sum += c as f64 / num_vertices as f64;
                total_queries += 1;
            }
        }
    }

    Ok(ScenarioResult {
        approaches: totals,
        mean_selectivity: selectivity_sum / total_queries.max(1) as f64,
        total_queries,
    })
}

/// Convenience: a supplier drawing `n` queries at fixed selectivity per
/// step from a [`QueryGen`] snapshot.
pub fn fixed_selectivity_supplier(
    mut gen: QueryGen,
    n: usize,
    selectivity: f64,
) -> impl FnMut(u32, &Mesh) -> Vec<Aabb> {
    move |_step, _mesh| gen.batch_with_selectivity(n, selectivity)
}

/// Convenience: the standard sensitivity-analysis setup (§V-C): 15
/// uniform random queries of selectivity 0.1 % per step.
pub fn standard_supplier(mesh: &Mesh, seed: u64) -> impl FnMut(u32, &Mesh) -> Vec<Aabb> {
    fixed_selectivity_supplier(QueryGen::new(mesh, seed), 15, 0.001)
}

/// Deterministic per-figure RNG.
pub fn figure_rng(config: &crate::Config, figure: u64) -> SplitMix64 {
    SplitMix64::new(config.seed ^ (figure << 48))
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;
    use octopus_index::{LinearScan, Octree};
    use octopus_meshgen::voxel::VoxelRegion;
    use octopus_sim::SmoothRandomField;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn scenario_cross_checks_and_accumulates() {
        let mesh = box_mesh(6);
        let octopus = Octopus::new(&mesh).unwrap();
        let gen = QueryGen::new(&mesh, 7);
        let mut sim = Simulation::new(mesh, Box::new(SmoothRandomField::new(0.004, 3, 11)));
        let mut approaches = vec![
            Approach::Octopus(octopus),
            Approach::Index(Box::new(LinearScan::new())),
            Approach::Index(Box::new(Octree::with_bucket_capacity(64))),
        ];
        let mut supplier = fixed_selectivity_supplier(gen, 4, 0.01);
        let result = run_scenario(&mut sim, 5, &mut supplier, &mut approaches).unwrap();
        assert_eq!(result.total_queries, 20);
        for a in &result.approaches {
            assert_eq!(a.queries, 20, "{}", a.name);
            assert!(a.total_results > 0, "{}", a.name);
        }
        // All exact approaches returned identical counts (checked inside),
        // so totals agree.
        let counts: Vec<usize> = result.approaches.iter().map(|a| a.total_results).collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        // The octree must have paid maintenance; OCTOPUS must not.
        assert!(result.approaches[2].maintenance > Duration::ZERO);
        assert_eq!(result.approaches[0].maintenance, Duration::ZERO);
        assert!(result.mean_selectivity > 0.0);
    }

    #[test]
    fn speedup_helper() {
        let mesh = box_mesh(5);
        let octopus = Octopus::new(&mesh).unwrap();
        let gen = QueryGen::new(&mesh, 9);
        let mut sim = Simulation::new(mesh, Box::new(SmoothRandomField::new(0.004, 3, 13)));
        let mut approaches = vec![
            Approach::Octopus(octopus),
            Approach::Index(Box::new(LinearScan::new())),
        ];
        let mut supplier = fixed_selectivity_supplier(gen, 3, 0.005);
        let result = run_scenario(&mut sim, 3, &mut supplier, &mut approaches).unwrap();
        let s = result.speedup_of("OCTOPUS", "LinearScan");
        assert!(s.is_finite() && s > 0.0);
        assert!(result.get("LinearScan").is_some());
        assert!(result.get("nonexistent").is_none());
    }

    #[test]
    fn approximate_approaches_skip_the_cross_check() {
        let mesh = box_mesh(6);
        let approx = ApproxOctopus::new(&mesh, 0.01, 3).unwrap();
        let scan: Box<dyn DynamicIndex> = Box::new(LinearScan::new());
        let gen = QueryGen::new(&mesh, 17);
        let mut sim = Simulation::new(mesh, Box::new(SmoothRandomField::new(0.002, 3, 17)));
        let mut approaches = vec![Approach::Approx(approx), Approach::Index(scan)];
        let mut supplier = fixed_selectivity_supplier(gen, 3, 0.02);
        // Must not panic even if the approximation misses results.
        let result = run_scenario(&mut sim, 3, &mut supplier, &mut approaches).unwrap();
        assert!(result.approaches[0].total_results <= result.approaches[1].total_results);
    }
}
