//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments                    # every figure, default scale
//! experiments fig6 fig9          # a subset
//! experiments --scale 0.5 fig7   # smaller datasets
//! experiments --steps 0.2 --out results/    # fewer steps, save files
//! experiments --quick            # smoke-test configuration
//! ```

use octopus_bench::figures::{run_figure, ALL_FIGURES};
use octopus_bench::Config;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Config::default();
    let mut figures: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--steps" => {
                i += 1;
                config.steps_factor = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--steps needs a positive factor"));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| die("--out needs a directory")),
                );
            }
            "--quick" => config = Config::quick(),
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--scale F] [--steps F] [--seed N] \
                     [--out DIR] [figN ...]\nfigures: {}",
                    ALL_FIGURES.join(" ")
                );
                return;
            }
            other if other.starts_with("fig") => figures.push(other.to_string()),
            other => die(&format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if figures.is_empty() {
        figures = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "# OCTOPUS experiments — scale {}, steps factor {}, seed {:#x}",
        config.scale, config.steps_factor, config.seed
    );
    if cfg!(debug_assertions) {
        eprintln!("# WARNING: debug build — run with --release for meaningful timings");
    }

    for id in &figures {
        let t0 = std::time::Instant::now();
        match run_figure(id, &config) {
            Some(output) => {
                let text = output.render();
                println!("{text}");
                eprintln!("# {id} completed in {:.1?}", t0.elapsed());
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create output directory");
                    let mut f = std::fs::File::create(dir.join(format!("{id}.txt")))
                        .expect("create figure file");
                    f.write_all(text.as_bytes()).expect("write figure file");
                    for (i, table) in output.tables.iter().enumerate() {
                        let mut c = std::fs::File::create(dir.join(format!("{id}_{i}.csv")))
                            .expect("create csv file");
                        c.write_all(table.to_csv().as_bytes()).expect("write csv");
                    }
                }
            }
            None => die(&format!(
                "unknown figure '{id}' (known: {})",
                ALL_FIGURES.join(" ")
            )),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}
