//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `figures::figN` module reproduces one table/figure of the
//! evaluation (see `DESIGN.md` §4 for the full index); the `experiments`
//! binary runs them and prints paper-style tables:
//!
//! ```text
//! cargo run -p octopus-bench --release --bin experiments            # all
//! cargo run -p octopus-bench --release --bin experiments -- fig7    # one
//! cargo run -p octopus-bench --release --bin experiments -- --scale 0.5 fig6
//! ```
//!
//! Shared infrastructure:
//!
//! * [`workload`] — query generation at target selectivity / result
//!   count, plus the Fig. 5 benchmark suite definitions;
//! * [`runner`] — the monitor loop driving every competitor over the
//!   same simulation and the same queries, with result-count
//!   cross-checking (every approach must agree on every query);
//! * [`table`] — plain-text table rendering for stdout and files.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod runner;
pub mod table;
pub mod workload;

/// Global experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Linear scale multiplier on dataset resolution (1.0 = defaults of
    /// `octopus-meshgen`; experiments stay laptop-sized).
    pub scale: f32,
    /// Multiplier on time-step counts (quick CI runs use < 1).
    pub steps_factor: f64,
    /// Base RNG seed so whole runs are reproducible.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 1.0,
            steps_factor: 1.0,
            seed: 0x0C70_9005,
        }
    }
}

impl Config {
    /// A reduced configuration for smoke tests (tiny meshes, few steps).
    pub fn quick() -> Config {
        Config {
            scale: 0.35,
            steps_factor: 0.1,
            seed: 0x0C70_9005,
        }
    }

    /// Scales a nominal step count (at least 1).
    pub fn steps(&self, nominal: u32) -> u32 {
        ((f64::from(nominal) * self.steps_factor).round() as u32).max(1)
    }
}
