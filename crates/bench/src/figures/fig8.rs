//! Fig. 8 — earthquake (convex) dataset characterisation table.

use super::FigureOutput;
use crate::table::Table;
use crate::Config;
use octopus_mesh::MeshStats;
use octopus_meshgen::{basin, BasinResolution};

/// Generates SF2/SF1 and tabulates their characteristics next to the
/// paper's Fig. 8 values.
pub fn run(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 8: Earthquake simulation, convex mesh datasets (ours | paper)",
        &[
            "Dataset",
            "Size [MiB]",
            "Cells [k]",
            "Vertices [k]",
            "Mesh degree",
            "S:V ratio",
            "paper S:V",
            "paper degree",
        ],
    );
    for res in BasinResolution::ALL {
        let mesh = basin(res, config.scale).expect("basin generation");
        let s = MeshStats::compute(&mesh).expect("stats");
        let paper_degree = match res {
            BasinResolution::Sf2 => 13.3,
            BasinResolution::Sf1 => 13.5,
        };
        table.push_row(vec![
            res.label().into(),
            format!("{:.1}", s.memory_mib()),
            format!("{:.1}", s.num_cells as f64 / 1e3),
            format!("{:.1}", s.num_vertices as f64 / 1e3),
            format!("{:.2}", s.mesh_degree),
            format!("{:.3}", s.surface_ratio),
            format!("{:.2}", res.paper_surface_ratio()),
            format!("{paper_degree:.1}"),
        ]);
    }
    FigureOutput {
        id: "fig8",
        title: "Earthquake convex mesh datasets (SF2, SF1)".into(),
        tables: vec![table],
        notes: vec![
            "Paper Fig. 8: SF2 = 2.07 M tets, S:V 0.16, degree 13.3; SF1 = 13.98 M tets, \
             S:V 0.09, degree 13.5."
                .into(),
            "Box meshes reproduce the S:V ratios almost exactly at scale 1.0 — these two \
             values drive the Fig. 9 speedup contrast."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_has_two_rows_and_sf1_is_finer() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 2);
        let sv_sf2: f64 = t.rows[0][5].parse().unwrap();
        let sv_sf1: f64 = t.rows[1][5].parse().unwrap();
        assert!(sv_sf1 < sv_sf2, "SF1 must have the lower surface ratio");
    }
}
