//! Fig. 7 — sensitivity analysis (8 panels).
//!
//! (a/b) mesh detail with fixed query volume; (c/d) mesh detail with
//! fixed result count; (e/f) number of time steps; (g/h) query
//! selectivity. OCTOPUS vs LinearScan throughout (§V-C: 60 time steps,
//! 15 queries of 0.1 % selectivity per step unless varied).

use super::FigureOutput;
use crate::runner::{fixed_selectivity_supplier, run_scenario, Approach};
use crate::table::{speedup, Table};
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::Octopus;
use octopus_index::LinearScan;
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Simulation, SmoothRandomField};

const AMPLITUDE: f32 = 0.004;
const QUERIES_PER_STEP: usize = 15;
const STANDARD_SELECTIVITY: f64 = 0.001;

/// One OCTOPUS + LinearScan run; returns (octopus_ms, scan_ms, speedup).
fn duel(
    config: &Config,
    mesh: Mesh,
    steps: u32,
    mut supplier: impl FnMut(u32, &Mesh) -> Vec<octopus_geom::Aabb>,
) -> (f64, f64, f64) {
    let mut approaches = vec![
        Approach::Octopus(Octopus::new(&mesh).expect("surface extraction")),
        Approach::Index(Box::new(LinearScan::new())),
    ];
    let mut sim = Simulation::new(
        mesh,
        Box::new(SmoothRandomField::new(AMPLITUDE, 4, config.seed ^ 7)),
    );
    let result = run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");
    let o = result
        .get("OCTOPUS")
        .unwrap()
        .total_response()
        .as_secs_f64()
        * 1e3;
    let s = result
        .get("LinearScan")
        .unwrap()
        .total_response()
        .as_secs_f64()
        * 1e3;
    (o, s, s / o.max(1e-12))
}

/// Runs all four sensitivity experiments.
pub fn run(config: &Config) -> FigureOutput {
    let steps = config.steps(60);
    let mut tables = Vec::new();

    // ---- (a/b): mesh detail, fixed query volume. The same query boxes
    // (calibrated on the coarsest mesh) are reused at every level, so
    // result counts grow with detail.
    {
        let mut t = Table::new(
            format!("Fig. 7(a/b): mesh detail, fixed query volume ({steps} steps)"),
            &["Level", "LinearScan [ms]", "OCTOPUS [ms]", "Speedup"],
        );
        let coarse = neuron(NeuroLevel::L1, config.scale).expect("neuron");
        let mut gen = QueryGen::new(&coarse, config.seed ^ 0x7A);
        // Pre-draw all queries once; reuse across levels and steps.
        let fixed: Vec<Vec<octopus_geom::Aabb>> = (0..steps)
            .map(|_| gen.batch_with_selectivity(QUERIES_PER_STEP, STANDARD_SELECTIVITY))
            .collect();
        for level in NeuroLevel::ALL {
            let mesh = neuron(level, config.scale).expect("neuron");
            let queries = fixed.clone();
            let (o, s, x) = duel(config, mesh, steps, move |step, _| {
                queries[(step - 1) as usize].clone()
            });
            t.push_row(vec![
                level.label().into(),
                format!("{s:.2}"),
                format!("{o:.2}"),
                speedup(x),
            ]);
        }
        tables.push(t);
    }

    // ---- (c/d): mesh detail, fixed result count (query volume shrinks
    // with detail).
    {
        let mut t = Table::new(
            format!("Fig. 7(c/d): mesh detail, fixed result count ({steps} steps)"),
            &["Level", "LinearScan [ms]", "OCTOPUS [ms]", "Speedup"],
        );
        let coarse = neuron(NeuroLevel::L1, config.scale).expect("neuron");
        let target_results = (coarse.num_vertices() as f64 * STANDARD_SELECTIVITY).max(4.0);
        for level in NeuroLevel::ALL {
            let mesh = neuron(level, config.scale).expect("neuron");
            let mut gen = QueryGen::new(&mesh, config.seed ^ 0x7C);
            let (o, s, x) = duel(config, mesh, steps, move |_, _| {
                (0..QUERIES_PER_STEP)
                    .map(|_| gen.query_with_count(target_results))
                    .collect()
            });
            t.push_row(vec![
                level.label().into(),
                format!("{s:.2}"),
                format!("{o:.2}"),
                speedup(x),
            ]);
        }
        tables.push(t);
    }

    // ---- (e/f): number of time steps (L3, standard queries).
    {
        let mut t = Table::new(
            "Fig. 7(e/f): time steps (level 0.26, selectivity 0.1%)",
            &["Steps", "LinearScan [ms]", "OCTOPUS [ms]", "Speedup"],
        );
        for nominal in [20u32, 40, 60, 80, 100] {
            let n = config.steps(nominal);
            let mesh = neuron(NeuroLevel::L3, config.scale).expect("neuron");
            let gen = QueryGen::new(&mesh, config.seed ^ 0x7E);
            let supplier = fixed_selectivity_supplier(gen, QUERIES_PER_STEP, STANDARD_SELECTIVITY);
            let (o, s, x) = duel(config, mesh, n, supplier);
            t.push_row(vec![
                nominal.to_string(),
                format!("{s:.2}"),
                format!("{o:.2}"),
                speedup(x),
            ]);
        }
        tables.push(t);
    }

    // ---- (g/h): query selectivity (L3, 60 steps). The paper sweeps
    // 0.01–0.2 %; we extend to 2 % because at laptop-scale surface
    // ratios the probe dominates until the crawl term (M·sel·C_R) grows
    // comparable to S·C_P — the fall-off the paper sees at 0.2 % appears
    // here an order of magnitude later, exactly as Eq. 5 predicts.
    {
        let mut t = Table::new(
            format!("Fig. 7(g/h): query selectivity (level 0.26, {steps} steps)"),
            &[
                "Selectivity [%]",
                "LinearScan [ms]",
                "OCTOPUS [ms]",
                "Speedup",
            ],
        );
        for sel in [0.0001f64, 0.001, 0.002, 0.005, 0.01, 0.02] {
            let mesh = neuron(NeuroLevel::L3, config.scale).expect("neuron");
            let gen = QueryGen::new(&mesh, config.seed ^ 0x7F);
            let supplier = fixed_selectivity_supplier(gen, QUERIES_PER_STEP, sel);
            let (o, s, x) = duel(config, mesh, steps, supplier);
            t.push_row(vec![
                format!("{:.2}", sel * 100.0),
                format!("{s:.2}"),
                format!("{o:.2}"),
                speedup(x),
            ]);
        }
        tables.push(t);
    }

    FigureOutput {
        id: "fig7",
        title: "Sensitivity analysis (mesh detail, time steps, selectivity)".into(),
        tables,
        notes: vec![
            "Paper trends: (a/b) scan grows ∝ size, OCTOPUS slower-than-linear, speedup \
             8 → 10×; (c/d) scan flat, OCTOPUS shrinks, speedup 8 → 23×; (e/f) both grow \
             linearly in steps, speedup constant ≈ 9.5×; (g/h) speedup falls 17 → 7× as \
             selectivity rises 0.01 → 0.2 %."
                .into(),
            "Check the same four shapes here; absolute factors are compressed by the \
             larger laptop-scale surface ratios (Eq. 5)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_trends_hold_on_quick_config() {
        let out = run(&Config::quick());
        assert_eq!(out.tables.len(), 4);
        // (a/b): scan time grows with level.
        let scans: Vec<f64> = out.tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(
            scans.last().unwrap() > scans.first().unwrap(),
            "scan must grow with detail: {scans:?}"
        );
        // (e/f): total time grows with step count for both approaches.
        let steps_scan: Vec<f64> = out.tables[2]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(
            steps_scan.last().unwrap() > steps_scan.first().unwrap(),
            "{steps_scan:?}"
        );
    }
}
