//! Fig. 9 — convex mesh simulations (OCTOPUS-CON).
//!
//! (a) response time of OCTOPUS-CON / OCTOPUS / LinearScan on SF2 and
//! SF1 under a convexity-preserving shear-wave deformation; (b) phase
//! breakdown of both OCTOPUS variants; (c) directed-walk length vs grid
//! resolution; (d) grid memory vs resolution.

use super::FigureOutput;
use crate::runner::{fixed_selectivity_supplier, run_scenario, Approach};
use crate::table::{ms, speedup, Table};
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::{Octopus, OctopusCon};
use octopus_index::{DynamicIndex, LinearScan};
use octopus_meshgen::{basin, BasinResolution};
use octopus_sim::{ShearWave, Simulation};

const QUERIES_PER_STEP: usize = 15;
const SELECTIVITY: f64 = 0.001;

/// Runs all four panels.
pub fn run(config: &Config) -> FigureOutput {
    let steps = config.steps(60);
    let mut time_table = Table::new(
        format!("Fig. 9(a): convex datasets, total query response time [ms] ({steps} steps)"),
        &[
            "Dataset",
            "OCTOPUS-CON",
            "OCTOPUS",
            "LinearScan",
            "CON speedup",
            "OCTOPUS speedup",
        ],
    );
    let mut phase_table = Table::new(
        "Fig. 9(b): phase breakdown [ms]",
        &[
            "Dataset",
            "Approach",
            "Surface probe",
            "Directed walk",
            "Crawling",
        ],
    );

    for res in BasinResolution::ALL {
        let mesh = basin(res, config.scale).expect("basin generation");
        let mut approaches = vec![
            Approach::OctopusCon(OctopusCon::new(&mesh)),
            Approach::Octopus(Octopus::new(&mesh).expect("surface extraction")),
            Approach::Index(Box::new(LinearScan::new())),
        ];
        let gen = QueryGen::new(&mesh, config.seed ^ 9);
        let mut sim = Simulation::new(mesh, Box::new(ShearWave::new(0.02, 40.0)));
        let mut supplier = fixed_selectivity_supplier(gen, QUERIES_PER_STEP, SELECTIVITY);
        let result =
            run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");

        let t = |name: &str| result.get(name).unwrap().total_response();
        time_table.push_row(vec![
            res.label().into(),
            ms(t("OCTOPUS-CON")),
            ms(t("OCTOPUS")),
            ms(t("LinearScan")),
            speedup(result.speedup_of("OCTOPUS-CON", "LinearScan")),
            speedup(result.speedup_of("OCTOPUS", "LinearScan")),
        ]);
        for name in ["OCTOPUS-CON", "OCTOPUS"] {
            let p = result.get(name).unwrap().phases;
            phase_table.push_row(vec![
                res.label().into(),
                name.into(),
                ms(p.surface_probe),
                ms(p.directed_walk),
                ms(p.crawling),
            ]);
        }
    }

    // ---- (c/d): grid resolution sweep on SF1.
    let sweep_steps = config.steps(10);
    let mut grid_table = Table::new(
        format!("Fig. 9(c/d): grid resolution sweep on SF1 ({sweep_steps} steps)"),
        &["Grid cells", "Walk vertices/query", "Grid memory [MiB]"],
    );
    {
        let mesh = basin(BasinResolution::Sf1, config.scale).expect("basin generation");
        for res in [2usize, 6, 10, 14, 18] {
            let con = OctopusCon::with_resolution(&mesh, res);
            let grid_mem = con.grid().memory_bytes();
            let cells = con.grid().num_cells();
            let mut approaches = vec![Approach::OctopusCon(con)];
            let gen = QueryGen::new(&mesh, config.seed ^ 0x9C);
            let mut sim = Simulation::new(mesh.clone(), Box::new(ShearWave::new(0.02, 40.0)));
            let mut supplier = fixed_selectivity_supplier(gen, QUERIES_PER_STEP, SELECTIVITY);
            let result = run_scenario(&mut sim, sweep_steps, &mut supplier, &mut approaches)
                .expect("scenario");
            let totals = result.get("OCTOPUS-CON").unwrap();
            let walk_per_query = totals.phases.walk_visited as f64 / totals.queries as f64;
            grid_table.push_row(vec![
                cells.to_string(),
                format!("{walk_per_query:.1}"),
                format!("{:.3}", grid_mem as f64 / (1024.0 * 1024.0)),
            ]);
        }
    }

    FigureOutput {
        id: "fig9",
        title: "Convex datasets: OCTOPUS-CON vs OCTOPUS vs LinearScan".into(),
        tables: vec![time_table, phase_table, grid_table],
        notes: vec![
            "Paper: OCTOPUS speedup 5.7× (SF2) rising to 6.7× (SF1, smaller S:V); \
             OCTOPUS-CON 15.5× on both — insensitive to S:V because it skips the probe. \
             Crawling time identical between variants."
                .into(),
            "Fig. 9(c): walk length falls as the grid gets finer; Fig. 9(d): grid memory \
             grows with resolution. Even an 8-cell grid cuts the walk substantially."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_con_beats_octopus_and_walk_shrinks_with_grid() {
        let out = run(&Config::quick());
        // (a): OCTOPUS-CON ≤ OCTOPUS on both datasets (no probe).
        for row in &out.tables[0].rows {
            let con: f64 = row[1].parse().unwrap();
            let full: f64 = row[2].parse().unwrap();
            assert!(
                con <= full * 1.2,
                "CON {con} should not exceed OCTOPUS {full} (row {row:?})"
            );
        }
        // (b): CON's probe time is exactly zero.
        for row in &out.tables[1].rows {
            if row[1] == "OCTOPUS-CON" {
                let probe: f64 = row[2].parse().unwrap();
                assert_eq!(probe, 0.0);
            }
        }
        // (c/d): walk length decreases, memory increases with resolution.
        let rows = &out.tables[2].rows;
        let walk_first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let walk_last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(walk_last < walk_first, "finer grid must shorten the walk");
        let mem_first: f64 = rows.first().unwrap()[2].parse().unwrap();
        let mem_last: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(mem_last > mem_first, "finer grid must cost more memory");
    }
}
