//! Fig. 11 — validation of the analytical model (§IV-G / §VI-B).
//!
//! Measured OCTOPUS response time vs Eq.-3 prediction across the five
//! neuro datasets × selectivities {0.01 %, 0.1 %, 0.2 %}, plus the linear
//! scan vs Eq. 4. `C_S`/`C_R` are calibrated on the smallest dataset,
//! exactly like the paper.

use super::FigureOutput;
use crate::runner::{fixed_selectivity_supplier, run_scenario, Approach};
use crate::table::Table;
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::{CostModel, Octopus};
use octopus_index::LinearScan;
use octopus_mesh::MeshStats;
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Simulation, SmoothRandomField};

const QUERIES_PER_STEP: usize = 15;

/// Runs the model-validation experiment.
pub fn run(config: &Config) -> FigureOutput {
    let steps = config.steps(60);
    // Calibrate on the smallest dataset (the paper's procedure).
    let small = neuron(NeuroLevel::L1, config.scale).expect("neuron generation");
    let model = CostModel::calibrate(&small, 3);

    let mut table = Table::new(
        format!(
            "Fig. 11: analytical model validation ({steps} steps; C_S = {:.2} ns, C_R = {:.2} ns, C_P = {:.2} ns, C_R/C_S = {:.2})",
            model.cs * 1e9,
            model.cr * 1e9,
            model.cp * 1e9,
            model.cr / model.cs
        ),
        &[
            "Level",
            "Sel [%]",
            "Scan measured [ms]",
            "Scan model [ms]",
            "OCTOPUS measured [ms]",
            "OCTOPUS model [ms]",
            "Model error [%]",
        ],
    );

    for level in NeuroLevel::ALL {
        let mesh = neuron(level, config.scale).expect("neuron generation");
        let stats = MeshStats::compute(&mesh).expect("stats");
        for sel in [0.0001f64, 0.001, 0.002] {
            let mut approaches = vec![
                Approach::Octopus(Octopus::new(&mesh).expect("surface")),
                Approach::Index(Box::new(LinearScan::new())),
            ];
            let gen = QueryGen::new(&mesh, config.seed ^ 11);
            let mut sim = Simulation::new(
                mesh.clone(),
                Box::new(SmoothRandomField::new(0.004, 4, config.seed ^ 0xB0)),
            );
            let mut supplier = fixed_selectivity_supplier(gen, QUERIES_PER_STEP, sel);
            let result =
                run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");

            // Predictions for the executed workload: per-query cost ×
            // number of queries, using the *measured* mean selectivity
            // (the paper uses histogram estimates; ours is equivalent
            // input to Eq. 3).
            let q = result.total_queries as f64;
            let scan_model = model.scan_seconds(stats.num_vertices) * q * 1e3;
            let octo_model = model.octopus_seconds(
                stats.num_vertices,
                stats.surface_ratio,
                stats.mesh_degree,
                result.mean_selectivity,
            ) * q
                * 1e3;
            let scan_measured = result
                .get("LinearScan")
                .unwrap()
                .total_response()
                .as_secs_f64()
                * 1e3;
            let octo_measured = result
                .get("OCTOPUS")
                .unwrap()
                .total_response()
                .as_secs_f64()
                * 1e3;
            let err = (octo_model - octo_measured).abs() / octo_measured.max(1e-12) * 100.0;
            table.push_row(vec![
                level.label().into(),
                format!("{:.2}", sel * 100.0),
                format!("{scan_measured:.2}"),
                format!("{scan_model:.2}"),
                format!("{octo_measured:.2}"),
                format!("{octo_model:.2}"),
                format!("{err:.1}"),
            ]);
        }
    }

    // Eq. 6 corollary, as in §VI-B.
    let l5 = neuron(NeuroLevel::L5, config.scale).expect("neuron");
    let l5_stats = MeshStats::compute(&l5).expect("stats");
    let crossover = model.crossover_selectivity(l5_stats.surface_ratio, l5_stats.mesh_degree);

    FigureOutput {
        id: "fig11",
        title: "Analytical model validation".into(),
        tables: vec![table],
        notes: vec![
            "Paper: model predictions within 2 % of measurements; scan ∝ V; OCTOPUS grows \
             with S·V + M·sel·V."
                .into(),
            "Model refinement (DESIGN.md): the probe is charged at the calibrated gather \
             constant C_P instead of the paper's C_S — on modern vectorising CPUs the \
             sequential scan is ~3× cheaper per vertex than a gather, which the paper's \
             2011 hardware (and S ≤ 0.07) hid."
                .into(),
            format!(
                "Eq. 6 on our largest dataset (S = {:.3}, M = {:.2}): OCTOPUS wins below \
                 {:.2} % selectivity (paper: 1.61 % at S = 0.03, M = 14.51).",
                l5_stats.surface_ratio,
                l5_stats.mesh_degree,
                crossover * 100.0
            ),
            "Calibration-time constants drift a few percent run-to-run; expect errors in \
             the tens of percent in debug/quick runs and small errors in release runs."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_model_is_in_the_right_ballpark() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 15);
        // The model must capture the scan's scale within an order of
        // magnitude even on quick/debug runs.
        for row in &t.rows {
            let measured: f64 = row[2].parse().unwrap();
            let predicted: f64 = row[3].parse().unwrap();
            assert!(measured > 0.0 && predicted > 0.0);
            let ratio = predicted / measured;
            assert!(
                (0.05..20.0).contains(&ratio),
                "scan model ratio {ratio} out of range (row {row:?})"
            );
        }
    }
}
