//! Fig. 6 — benchmark evaluation: response time (a) and memory (b).
//!
//! Benchmarks A–D (Fig. 5) on the most detailed neuroscience mesh,
//! 60 time steps, comparing OCTOPUS, LinearScan, Octree (throwaway),
//! LUR-Tree and QU-Trade. Response time includes index maintenance
//! (§V-A methodology).

use super::FigureOutput;
use crate::runner::{figure_rng, run_scenario, Approach};
use crate::table::{mib, ms, speedup, Table};
use crate::workload::{NeuroBenchmark, QueryGen};
use crate::Config;
use octopus_core::Octopus;
use octopus_index::{LinearScan, LurTree, Octree, QuTrade};
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Simulation, SmoothRandomField};

/// Per-step displacement amplitude for the neural-plasticity stand-in.
pub const NEURO_AMPLITUDE: f32 = 0.004;

/// Builds the Fig. 6 competitor roster for a given mesh.
pub fn competitors(mesh: &octopus_mesh::Mesh) -> Vec<Approach> {
    let mut lur = LurTree::new();
    lur.build(mesh.positions());
    let mut qut = QuTrade::new(2.0 * NEURO_AMPLITUDE);
    qut.build(mesh.positions());
    vec![
        Approach::Octopus(Octopus::new(mesh).expect("surface extraction")),
        Approach::Index(Box::new(LinearScan::new())),
        Approach::Index(Box::new(Octree::new())),
        Approach::Index(Box::new(lur)),
        Approach::Index(Box::new(qut)),
    ]
}

/// Runs benchmarks A–D over all five approaches.
pub fn run(config: &Config) -> FigureOutput {
    let steps = config.steps(60);
    let mut time_table = Table::new(
        format!("Fig. 6(a): total query response time [ms] over {steps} steps"),
        &[
            "Benchmark",
            "OCTOPUS",
            "LinearScan",
            "Octree",
            "LUR-Tree",
            "QU-Trade",
            "speedup vs scan",
        ],
    );
    let mut mem_table = Table::new(
        "Fig. 6(b): memory footprint [MiB]",
        &[
            "Benchmark",
            "OCTOPUS",
            "LinearScan",
            "Octree",
            "LUR-Tree",
            "QU-Trade",
        ],
    );
    let mut share_table = Table::new(
        "Fig. 6 text: maintenance share of total response [%] (paper: Octree 99.5, LUR 80, QU 42)",
        &["Benchmark", "Octree", "LUR-Tree", "QU-Trade"],
    );

    for bench in NeuroBenchmark::ALL {
        let mesh = neuron(NeuroLevel::L5, config.scale).expect("neuron generation");
        let mut approaches = competitors(&mesh);
        let mut gen = QueryGen::new(&mesh, config.seed ^ 6);
        let mut rng = figure_rng(config, 6);
        let mut sim = Simulation::new(
            mesh,
            Box::new(SmoothRandomField::new(
                NEURO_AMPLITUDE,
                4,
                config.seed ^ 0x66,
            )),
        );
        let mut supplier =
            move |_step: u32, _mesh: &octopus_mesh::Mesh| bench.step_queries(&mut gen, &mut rng);
        let result =
            run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");

        let t = |name: &str| result.get(name).unwrap().total_response();
        time_table.push_row(vec![
            bench.name.into(),
            ms(t("OCTOPUS")),
            ms(t("LinearScan")),
            ms(t("Octree(rebuild)")),
            ms(t("LUR-Tree")),
            ms(t("QU-Trade")),
            speedup(result.speedup_of("OCTOPUS", "LinearScan")),
        ]);
        let m = |name: &str| result.get(name).unwrap().memory_bytes;
        mem_table.push_row(vec![
            bench.name.into(),
            mib(m("OCTOPUS")),
            mib(m("LinearScan")),
            mib(m("Octree(rebuild)")),
            mib(m("LUR-Tree")),
            mib(m("QU-Trade")),
        ]);
        let share = |name: &str| {
            let a = result.get(name).unwrap();
            let total = a.total_response().as_secs_f64().max(1e-12);
            format!("{:.1}", a.maintenance.as_secs_f64() / total * 100.0)
        };
        share_table.push_row(vec![
            bench.name.into(),
            share("Octree(rebuild)"),
            share("LUR-Tree"),
            share("QU-Trade"),
        ]);
    }

    FigureOutput {
        id: "fig6",
        title: "Benchmark evaluation: performance (a) and memory overhead (b)".into(),
        tables: vec![time_table, mem_table, share_table],
        notes: vec![
            "Paper: OCTOPUS fastest on all four benchmarks (7.3–9.2× vs scan); linear scan \
             beats all index-based approaches; Octree beats LUR-Tree/QU-Trade; memory: \
             scan < OCTOPUS < Octree < QU-Trade/LUR-Tree."
                .into(),
            "Shape to check here: same per-benchmark ordering; our OCTOPUS speedup factor \
             is smaller because laptop-scale meshes have a larger surface ratio (Eq. 5; \
             see EXPERIMENTS.md for the quantitative bridge)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_ordering_holds_on_quick_config() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let octopus: f64 = row[1].parse().unwrap();
            let scan: f64 = row[2].parse().unwrap();
            let lur: f64 = row[4].parse().unwrap();
            assert!(octopus > 0.0 && scan > 0.0);
            // The paper's headline ordering (robust even at tiny scale):
            // OCTOPUS beats the R-tree-based spatio-temporal indexes.
            assert!(
                octopus < lur,
                "OCTOPUS {octopus} vs LUR {lur} (row {row:?})"
            );
        }
        // Memory: linear scan is zero, OCTOPUS is positive and smaller
        // than LUR-Tree.
        let m = &out.tables[1].rows[0];
        let scan_mem: f64 = m[2].parse().unwrap();
        let octo_mem: f64 = m[1].parse().unwrap();
        let lur_mem: f64 = m[4].parse().unwrap();
        assert_eq!(scan_mem, 0.0);
        assert!(octo_mem > 0.0 && octo_mem < lur_mem);
    }
}
