//! Fig. 12 — effect of surface approximation (§IV-H2 / §VII-A).
//!
//! Sweeps the probe-sample fraction from 0.001 % to 10 % and reports
//! (a) result accuracy and (b) speedup relative to exact OCTOPUS, at
//! selectivities 0.01 % and 0.1 %.

use super::FigureOutput;
use crate::table::Table;
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::approx::result_accuracy;
use octopus_core::{ApproxOctopus, Octopus, SurfaceIndex};
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Deformation, SmoothRandomField};
use std::time::{Duration, Instant};

const QUERIES_PER_POINT: usize = 30;

/// Runs the approximation sweep.
pub fn run(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 12: surface approximation — accuracy (a) and speedup vs exact OCTOPUS (b)",
        &[
            "Approximation [%]",
            "Selectivity [%]",
            "Accuracy [%]",
            "Speedup [x]",
        ],
    );

    let mut mesh = neuron(NeuroLevel::L4, config.scale).expect("neuron generation");
    // One deformation step so positions are not the pristine lattice.
    let rest = mesh.positions().to_vec();
    SmoothRandomField::new(0.004, 4, config.seed ^ 12).apply_step(1, &rest, mesh.positions_mut());

    let surface = SurfaceIndex::build(&mesh).expect("surface");
    let mut exact = Octopus::from_surface_index(surface.clone(), &mesh);

    for sel in [0.0001f64, 0.001] {
        let mut gen = QueryGen::new(&mesh, config.seed ^ 0xC0);
        let queries: Vec<_> = (0..QUERIES_PER_POINT)
            .map(|_| gen.query_with_selectivity(sel))
            .collect();

        // Exact baseline.
        let mut exact_results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        let t0 = Instant::now();
        for q in &queries {
            let mut out = Vec::new();
            exact.query(&mesh, q, &mut out);
            out.sort_unstable();
            exact_results.push(out);
        }
        let exact_time = t0.elapsed();

        for fraction in [0.00001f64, 0.0001, 0.001, 0.01, 0.1] {
            let mut approx = ApproxOctopus::from_surface_index(
                &surface,
                mesh.num_vertices(),
                fraction,
                config.seed ^ 0xC1,
            );
            let mut acc_sum = 0.0f64;
            let mut time = Duration::ZERO;
            for (q, exact_out) in queries.iter().zip(&exact_results) {
                let mut out = Vec::new();
                let t1 = Instant::now();
                approx.query(&mesh, q, &mut out);
                time += t1.elapsed();
                acc_sum += result_accuracy(&out, exact_out);
            }
            let accuracy = acc_sum / queries.len() as f64 * 100.0;
            let speedup = exact_time.as_secs_f64() / time.as_secs_f64().max(1e-12);
            table.push_row(vec![
                format!("{}", fraction * 100.0),
                format!("{:.2}", sel * 100.0),
                format!("{accuracy:.1}"),
                format!("{speedup:.2}"),
            ]);
        }
    }

    FigureOutput {
        id: "fig12",
        title: "Effect of surface approximation".into(),
        tables: vec![table],
        notes: vec![
            "Paper: ≥ 90 % accuracy while ignoring 99.9 % of the surface (0.1 % \
             approximation); accuracy exact above 0.1 %; accuracy collapses at 0.001 % — \
             where speedup spikes because incomplete results also crawl less."
                .into(),
            "Larger queries tolerate coarser approximation (more surface vertices fall \
             inside)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_accuracy_increases_with_fraction() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 10);
        // Within each selectivity block, accuracy at the largest fraction
        // must be ≥ accuracy at the smallest.
        for block in t.rows.chunks(5) {
            let lo: f64 = block.first().unwrap()[2].parse().unwrap();
            let hi: f64 = block.last().unwrap()[2].parse().unwrap();
            assert!(
                hi >= lo,
                "accuracy must not degrade with more probes: {lo} -> {hi}"
            );
            assert!(
                hi > 60.0,
                "10% sampling should be fairly accurate, got {hi}"
            );
        }
    }
}
