//! Fig. 13 — effect of the Hilbert data layout (§IV-H1 / §VII-B).
//!
//! Runs the same workloads on the mesh in its generator order and in
//! Hilbert order, reporting phase times and the relative crawl speedup
//! per selectivity. The generator order is first scrambled (a random
//! permutation) so the baseline reflects an arbitrary in-memory layout —
//! voxel generators otherwise emit a nearly-sorted order that would hide
//! the effect the paper measures on real meshes.

use super::FigureOutput;
use crate::table::{ms, Table};
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::layout::{adjacency_locality, hilbert_layout};
use octopus_core::{Octopus, PhaseTimings};
use octopus_geom::Aabb;
use octopus_mesh::Mesh;
use octopus_meshgen::{neuron, NeuroLevel};
use std::time::Instant;

const QUERIES_PER_POINT: usize = 60;

fn run_queries(mesh: &Mesh, octopus: &mut Octopus, queries: &[Aabb]) -> (PhaseTimings, f64) {
    let mut phases = PhaseTimings::default();
    let mut out = Vec::new();
    let t0 = Instant::now();
    for q in queries {
        out.clear();
        phases.accumulate(&octopus.query(mesh, q, &mut out));
    }
    (phases, t0.elapsed().as_secs_f64())
}

/// Runs the layout comparison.
pub fn run(config: &Config) -> FigureOutput {
    let base = neuron(NeuroLevel::L5, config.scale).expect("neuron generation");
    // Scramble to simulate an arbitrary application layout.
    let mut scramble: Vec<u32> = (0..base.num_vertices() as u32).collect();
    octopus_geom::rng::SplitMix64::new(config.seed ^ 13).shuffle(&mut scramble);
    let unsorted = base.permute_vertices(&scramble);
    let (sorted, _) = hilbert_layout(&unsorted);
    let loc_before = adjacency_locality(&unsorted);
    let loc_after = adjacency_locality(&sorted);

    let mut table = Table::new(
        "Fig. 13: Hilbert layout — phase times [ms] and crawl speedup",
        &[
            "Selectivity [%]",
            "Probe (no layout)",
            "Crawl (no layout)",
            "Probe (Hilbert)",
            "Crawl (Hilbert)",
            "Crawl speedup [%]",
        ],
    );

    let mut o_unsorted = Octopus::new(&unsorted).expect("surface");
    let mut o_sorted = Octopus::new(&sorted).expect("surface");

    for sel in [0.0001f64, 0.0005, 0.001, 0.0015, 0.002] {
        // Same geometric queries for both layouts.
        let mut gen = QueryGen::new(&unsorted, config.seed ^ 0xD0);
        let queries: Vec<Aabb> = (0..QUERIES_PER_POINT)
            .map(|_| gen.query_with_selectivity(sel))
            .collect();
        let (p_un, _) = run_queries(&unsorted, &mut o_unsorted, &queries);
        let (p_so, _) = run_queries(&sorted, &mut o_sorted, &queries);
        assert_eq!(p_un.results, p_so.results, "layouts must agree on results");
        let crawl_speedup =
            (p_un.crawling.as_secs_f64() / p_so.crawling.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        table.push_row(vec![
            format!("{:.2}", sel * 100.0),
            ms(p_un.surface_probe),
            ms(p_un.crawling),
            ms(p_so.surface_probe),
            ms(p_so.crawling),
            format!("{crawl_speedup:.1}"),
        ]);
    }

    FigureOutput {
        id: "fig13",
        title: "Effect of Hilbert-based data layout".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "Mean adjacent-id distance: {loc_before:.0} (scrambled) → {loc_after:.0} \
                 (Hilbert) — the locality the crawl's cache behaviour depends on."
            ),
            "Paper: the layout speeds up crawling (up to ~50 % at 0.2 % selectivity, \
             growing with result size) and leaves the surface probe unchanged."
                .into(),
            "Two deviations worth noting: (1) our baseline is a *scrambled* layout (the \
             voxel generator's native order is already near-sorted and would hide the \
             effect the paper measures on real meshes), so crawl speedups exceed the \
             paper's 50 %; (2) the probe speeds up too — Hilbert order clusters the \
             surface vertices' ids, turning the probe's gather into near-sequential \
             runs. The paper's C++ probe did not show this; it is a bonus of the dense \
             sorted-id surface index."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_produces_rows_and_probe_is_layout_insensitive() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let probe_un: f64 = row[1].parse().unwrap();
            let probe_so: f64 = row[3].parse().unwrap();
            // Probe scans the same number of surface vertices either way;
            // allow generous noise but same order of magnitude.
            assert!(probe_un > 0.0 && probe_so > 0.0);
            let ratio = probe_un / probe_so;
            assert!(
                (0.2..5.0).contains(&ratio),
                "probe ratio {ratio} (row {row:?})"
            );
        }
    }
}
