//! Fig. 5 — the neuroscience microbenchmark suite (A–D).

use super::FigureOutput;
use crate::runner::figure_rng;
use crate::table::Table;
use crate::workload::{NeuroBenchmark, QueryGen};
use crate::Config;
use octopus_meshgen::{neuron, NeuroLevel};

/// Tabulates the benchmark definitions and verifies, by drawing one
/// step's worth of queries on the largest neuro mesh, that the generator
/// realises the configured selectivities.
pub fn run(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 5: Neuroscience benchmarks",
        &[
            "Benchmark",
            "Use case",
            "Queries/step",
            "Selectivity [%]",
            "Measured sel. [%]",
        ],
    );
    let mesh = neuron(NeuroLevel::L5, config.scale).expect("neuron generation");
    let mut gen = QueryGen::new(&mesh, config.seed ^ 5);
    let mut rng = figure_rng(config, 5);
    for b in NeuroBenchmark::ALL {
        let queries = b.step_queries(&mut gen, &mut rng);
        let measured: f64 = queries
            .iter()
            .map(|q| gen.actual_selectivity(q))
            .sum::<f64>()
            / queries.len() as f64;
        table.push_row(vec![
            b.name.into(),
            b.use_case.into(),
            if b.queries_per_step.0 == b.queries_per_step.1 {
                format!("{}", b.queries_per_step.0)
            } else {
                format!("{} to {}", b.queries_per_step.0, b.queries_per_step.1)
            },
            if (b.selectivity.0 - b.selectivity.1).abs() < 1e-12 {
                format!("{:.2}", b.selectivity.0 * 100.0)
            } else {
                format!(
                    "{:.2} to {:.2}",
                    b.selectivity.0 * 100.0,
                    b.selectivity.1 * 100.0
                )
            },
            format!("{:.3}", measured * 100.0),
        ]);
    }
    FigureOutput {
        id: "fig5",
        title: "Neuroscience benchmark definitions (A–D)".into(),
        tables: vec![table],
        notes: vec![
            "Paper Fig. 5: A = structural validation (13–17 q, 0.11–0.16 %), B = mesh \
             quality (7–9 q, 0.02–0.14 %), C/D = visualization (22 q, 0.18 % / 0.12 %)."
                .into(),
            "Range volumes are calibrated per dataset instead of fixed µm³ — selectivity \
             is the scale-free quantity the cost model depends on."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_lists_all_four_benchmarks_with_sane_measured_selectivity() {
        let out = run(&Config::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let measured: f64 = row[4].parse().unwrap();
            assert!(measured > 0.0 && measured < 5.0, "row {row:?}");
        }
    }
}
