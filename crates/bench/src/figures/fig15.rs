//! Figs. 14 & 15 — applicability on deforming animation datasets (§VIII-A).
//!
//! Fig. 14 characterises the three animation bodies; Fig. 15 runs each
//! sequence (its own frame count and deformation style) and reports the
//! average query response time per time step plus the speedup over the
//! linear scan — 15 random queries of 0.1 % selectivity per frame.

use super::FigureOutput;
use crate::runner::{fixed_selectivity_supplier, run_scenario, Approach};
use crate::table::{speedup, Table};
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::Octopus;
use octopus_index::LinearScan;
use octopus_mesh::MeshStats;
use octopus_meshgen::{animation, AnimationKind};
use octopus_sim::{AxialCompression, Deformation, LocalizedBumps, Simulation, TravelingWave};

/// The per-sequence deformation field (the paper's animation styles).
pub fn field_for(
    kind: AnimationKind,
    rest: &[octopus_geom::Point3],
    seed: u64,
) -> Box<dyn Deformation> {
    match kind {
        AnimationKind::HorseGallop => Box::new(TravelingWave::new(0.04, 0.8, 12.0)),
        AnimationKind::FacialExpression => {
            Box::new(LocalizedBumps::random(rest, 6, 0.12, 0.03, seed))
        }
        AnimationKind::CamelCompress => Box::new(AxialCompression::new(0.15, 16.0, 0)),
    }
}

/// Fig. 14: dataset characterisation table.
pub fn run_fig14(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 14: deforming mesh datasets (ours | paper)",
        &[
            "Dataset",
            "Time steps",
            "Size [MiB]",
            "Vertices [k]",
            "S:V ratio",
            "paper S:V",
        ],
    );
    for kind in AnimationKind::ALL {
        let mesh = animation(kind, config.scale).expect("animation generation");
        let s = MeshStats::compute(&mesh).expect("stats");
        table.push_row(vec![
            kind.label().into(),
            kind.time_steps().to_string(),
            format!("{:.1}", s.memory_mib()),
            format!("{:.1}", s.num_vertices as f64 / 1e3),
            format!("{:.3}", s.surface_ratio),
            format!("{:.3}", kind.paper_surface_ratio()),
        ]);
    }
    FigureOutput {
        id: "fig14",
        title: "Deforming mesh datasets".into(),
        tables: vec![table],
        notes: vec![
            "Paper Fig. 14: Horse 20.0 M verts S:V 0.023 (48 frames); Facial 83.6 M \
             S:V 0.010 (9 frames); Camel 39.8 M S:V 0.019 (53 frames)."
                .into(),
            "Relative ordering preserved: facial is the largest and most compact.".into(),
        ],
    }
}

/// Fig. 15: per-time-step response time and speedups.
pub fn run(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 15: query response time per time step [ms] and speedup",
        &[
            "Dataset",
            "Frames",
            "LinearScan /step",
            "OCTOPUS /step",
            "Speedup",
        ],
    );
    for kind in AnimationKind::ALL {
        let mesh = animation(kind, config.scale).expect("animation generation");
        let steps = config.steps(kind.time_steps() as u32);
        let field = field_for(kind, mesh.positions(), config.seed ^ 15);
        let mut approaches = vec![
            Approach::Octopus(Octopus::new(&mesh).expect("surface")),
            Approach::Index(Box::new(LinearScan::new())),
        ];
        let gen = QueryGen::new(&mesh, config.seed ^ 0xF0);
        let mut sim = Simulation::new(mesh, field);
        let mut supplier = fixed_selectivity_supplier(gen, 15, 0.001);
        let result =
            run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");
        let per_step = |name: &str| {
            result.get(name).unwrap().total_response().as_secs_f64() * 1e3 / f64::from(steps)
        };
        table.push_row(vec![
            kind.label().into(),
            steps.to_string(),
            format!("{:.3}", per_step("LinearScan")),
            format!("{:.3}", per_step("OCTOPUS")),
            speedup(result.speedup_of("OCTOPUS", "LinearScan")),
        ]);
    }
    FigureOutput {
        id: "fig15",
        title: "Query response time and speedups for deforming mesh datasets".into(),
        tables: vec![table],
        notes: vec![
            "Paper: OCTOPUS wins on all three; scan time ∝ dataset size; best speedup on \
             the facial dataset (lowest S:V, 0.010) — 15–19× overall."
                .into(),
            "Check: scan per-step time ordered by dataset size, and the facial dataset \
             showing the best OCTOPUS speedup."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_and_fig15_shapes() {
        let f14 = run_fig14(&Config::quick());
        assert_eq!(f14.tables[0].rows.len(), 3);

        let f15 = run(&Config::quick());
        let rows = &f15.tables[0].rows;
        assert_eq!(rows.len(), 3);
        // Scan per-step time must be largest on the biggest dataset
        // (facial), reproducing Fig. 15(a)'s proportionality.
        let scan_horse: f64 = rows[0][2].parse().unwrap();
        let scan_face: f64 = rows[1][2].parse().unwrap();
        assert!(
            scan_face > scan_horse,
            "facial ({scan_face}) must out-scan horse ({scan_horse})"
        );
    }
}
