//! Fig. 10 — OCTOPUS overhead analysis.
//!
//! (a) per-phase execution-time breakdown across dataset sizes;
//! (b) memory footprint vs number of query results (with the
//! result-proportional `HashSet` visited strategy, matching the paper's
//! accounting), plus the one-time surface-index build cost (§VI-A text).

use super::FigureOutput;
use crate::runner::{fixed_selectivity_supplier, run_scenario, Approach};
use crate::table::{ms, Table};
use crate::workload::QueryGen;
use crate::Config;
use octopus_core::{Octopus, SurfaceIndex, VisitedStrategy};
use octopus_meshgen::{neuron, NeuroLevel};
use octopus_sim::{Simulation, SmoothRandomField};
use std::time::Instant;

/// Runs both panels.
pub fn run(config: &Config) -> FigureOutput {
    let steps = config.steps(60);

    // ---- (a): phase breakdown vs dataset size.
    let mut phase_table = Table::new(
        format!("Fig. 10(a): performance breakdown [ms] ({steps} steps, fixed queries)"),
        &[
            "Level",
            "Surface probe",
            "Directed walk",
            "Crawling",
            "Build time [ms]",
        ],
    );
    for level in NeuroLevel::ALL {
        let mesh = neuron(level, config.scale).expect("neuron generation");
        let b0 = Instant::now();
        let surface = SurfaceIndex::build(&mesh).expect("surface build");
        let build_ms = b0.elapsed().as_secs_f64() * 1e3;
        let octopus = Octopus::from_surface_index(surface, &mesh);
        let gen = QueryGen::new(&mesh, config.seed ^ 10);
        let mut approaches = vec![Approach::Octopus(octopus)];
        let mut sim = Simulation::new(
            mesh,
            Box::new(SmoothRandomField::new(0.004, 4, config.seed ^ 0xA0)),
        );
        let mut supplier = fixed_selectivity_supplier(gen, 15, 0.001);
        let result =
            run_scenario(&mut sim, steps, &mut supplier, &mut approaches).expect("scenario");
        let p = result.get("OCTOPUS").unwrap().phases;
        phase_table.push_row(vec![
            level.label().into(),
            ms(p.surface_probe),
            ms(p.directed_walk),
            ms(p.crawling),
            format!("{build_ms:.2}"),
        ]);
    }

    // ---- (b): memory footprint vs result count.
    let mut mem_table = Table::new(
        "Fig. 10(b): memory footprint vs number of query results",
        &["Results", "Footprint [KiB]", "of which surface index [KiB]"],
    );
    {
        let mesh = neuron(NeuroLevel::L5, config.scale).expect("neuron generation");
        let n = mesh.num_vertices() as f64;
        let mut gen = QueryGen::new(&mesh, config.seed ^ 0xAB);
        for fraction in [0.002f64, 0.01, 0.05, 0.15, 0.3] {
            // Fresh executor per point: footprint reflects this workload
            // only (HashSet strategy: memory tracks touched vertices).
            let mut octopus =
                Octopus::with_strategy(&mesh, VisitedStrategy::HashSet).expect("surface");
            let mut out = Vec::new();
            let mut results = 0usize;
            for _ in 0..15 {
                let q = gen.query_with_count(fraction * n);
                out.clear();
                octopus.query(&mesh, &q, &mut out);
                results += out.len();
            }
            mem_table.push_row(vec![
                results.to_string(),
                format!("{:.1}", octopus.memory_bytes() as f64 / 1024.0),
                format!(
                    "{:.1}",
                    octopus.surface_index().memory_bytes() as f64 / 1024.0
                ),
            ]);
        }
    }

    FigureOutput {
        id: "fig10",
        title: "Overhead analysis: phase breakdown (a), memory footprint (b)".into(),
        tables: vec![phase_table, mem_table],
        notes: vec![
            "Paper: probe + crawl dominate; the directed walk barely contributes; probe \
             time grows sub-proportionally with size (S falls); crawl grows with the \
             result count. Surface-index build: one-time 62 s for the 33 GB mesh."
                .into(),
            "Paper Fig. 10(b): footprint ∝ results (1.9 MB traversal state + 27 MB \
             surface index for 480 k results on 208 M vertices). The HashSet visited \
             strategy reproduces the proportionality; the default EpochArray strategy \
             trades O(V) memory for faster crawls (ablation_visited bench)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_walk_is_negligible_and_memory_grows_with_results() {
        let out = run(&Config::quick());
        // (a): walk time does not dominate probe + crawl summed over
        // levels. (At full scale it is negligible — see EXPERIMENTS.md;
        // quick-config meshes are tiny, so allow slack.)
        let (mut walk, mut rest) = (0.0f64, 0.0f64);
        for row in &out.tables[0].rows {
            walk += row[2].parse::<f64>().unwrap();
            rest += row[1].parse::<f64>().unwrap() + row[3].parse::<f64>().unwrap();
        }
        assert!(
            walk < 2.0 * rest,
            "directed walk must not dominate: {walk} vs {rest}"
        );
        // (b): footprint increases with result count.
        let rows = &out.tables[1].rows;
        let first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last > first,
            "footprint must grow with results: {first} -> {last}"
        );
    }
}
