//! Fig. 4 — neuroscience dataset characterisation table.

use super::FigureOutput;
use crate::table::Table;
use crate::Config;
use octopus_mesh::MeshStats;
use octopus_meshgen::{neuron, NeuroLevel};

/// Generates the five neuro detail levels and tabulates their
/// characteristics next to the paper's values.
pub fn run(config: &Config) -> FigureOutput {
    let mut table = Table::new(
        "Fig. 4: Neuroscience dataset characterization (ours | paper)",
        &[
            "Level",
            "Size [MiB]",
            "Cells [k]",
            "Vertices [k]",
            "Mesh degree",
            "S:V ratio",
            "paper tets [G]",
            "paper S:V",
            "Components",
        ],
    );
    for level in NeuroLevel::ALL {
        let mesh = neuron(level, config.scale).expect("neuron generation");
        let s = MeshStats::compute(&mesh).expect("stats");
        table.push_row(vec![
            level.label().into(),
            format!("{:.1}", s.memory_mib()),
            format!("{:.1}", s.num_cells as f64 / 1e3),
            format!("{:.1}", s.num_vertices as f64 / 1e3),
            format!("{:.2}", s.mesh_degree),
            format!("{:.3}", s.surface_ratio),
            format!("{:.2}", level.paper_tets_billions()),
            format!("{:.2}", level.paper_surface_ratio()),
            s.components.to_string(),
        ]);
    }
    FigureOutput {
        id: "fig4",
        title: "Neuroscience dataset characterization".into(),
        tables: vec![table],
        notes: vec![
            "Paper: 0.13–1.32 G tets, degree ≈ 14.5, S:V falling 0.07 → 0.03.".into(),
            "Ours: same ×10 relative size spread and falling S:V; absolute S is higher \
             because S ∝ V^(-1/3) and our V is ~10³ smaller (see EXPERIMENTS.md)."
                .into(),
            "Two disjoint components = the paper's two neuron cells.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_produces_five_rows_with_falling_surface_ratio() {
        let out = run(&Config::quick());
        assert_eq!(out.tables.len(), 1);
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 5);
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[5].parse::<f64>().unwrap())
            .collect();
        assert!(
            ratios.first().unwrap() > ratios.last().unwrap(),
            "S:V must fall: {ratios:?}"
        );
        let cells: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        assert!(
            cells.windows(2).all(|w| w[0] < w[1]),
            "cells must grow: {cells:?}"
        );
    }
}
