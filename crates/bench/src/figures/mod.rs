//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(config) -> FigureOutput`; the `experiments`
//! binary dispatches on figure ids. Paper-expected values are embedded in
//! the output notes so the printed tables can be compared in place
//! (`EXPERIMENTS.md` records a full run).

use crate::table::Table;
use crate::Config;

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

/// Output of one figure reproduction.
#[derive(Clone, Debug)]
pub struct FigureOutput {
    /// Figure id, e.g. `fig6`.
    pub id: &'static str,
    /// Human-readable description of what the paper figure shows.
    pub title: String,
    /// Reproduced tables/series.
    pub tables: Vec<Table>,
    /// Comparison notes (paper-reported values, caveats).
    pub notes: Vec<String>,
}

impl FigureOutput {
    /// Renders the whole figure output as text.
    pub fn render(&self) -> String {
        let mut s = format!("==== {} — {} ====\n", self.id, self.title);
        for t in &self.tables {
            s.push('\n');
            s.push_str(&t.render());
        }
        if !self.notes.is_empty() {
            s.push_str("\nNotes:\n");
            for n in &self.notes {
                s.push_str(&format!("  * {n}\n"));
            }
        }
        s
    }
}

/// All figure ids in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15",
];

/// Runs one figure by id (`fig14` is part of `fig15`'s module but is
/// addressable on its own).
pub fn run_figure(id: &str, config: &Config) -> Option<FigureOutput> {
    match id {
        "fig4" => Some(fig4::run(config)),
        "fig5" => Some(fig5::run(config)),
        "fig6" => Some(fig6::run(config)),
        "fig7" => Some(fig7::run(config)),
        "fig8" => Some(fig8::run(config)),
        "fig9" => Some(fig9::run(config)),
        "fig10" => Some(fig10::run(config)),
        "fig11" => Some(fig11::run(config)),
        "fig12" => Some(fig12::run(config)),
        "fig13" => Some(fig13::run(config)),
        "fig14" => Some(fig15::run_fig14(config)),
        "fig15" => Some(fig15::run(config)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig99", &Config::quick()).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Only checks dispatch wiring, not execution (figure smoke tests
        // live in their own modules / integration tests).
        for id in ALL_FIGURES {
            assert!(
                matches!(
                    *id,
                    "fig4"
                        | "fig5"
                        | "fig6"
                        | "fig7"
                        | "fig8"
                        | "fig9"
                        | "fig10"
                        | "fig11"
                        | "fig12"
                        | "fig13"
                        | "fig14"
                        | "fig15"
                ),
                "unknown id {id}"
            );
        }
    }
}
