//! Plain-text tables for experiment output.

/// A rendered experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption (e.g. `Fig. 6(a): total query response time [ms]`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("── {} ──\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            format!("  {}\n", joined.join("  "))
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&format!("  {}\n", "-".repeat(total.saturating_sub(4))));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a byte count as MiB with 2 decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 4);
        // Header and rows share alignment width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(speedup(7.25), "7.25x");
        assert_eq!(pct(0.0012), "0.120%");
    }
}
