//! Monitoring-query workloads.
//!
//! The paper places range queries "uniform randomly in the mesh" at a
//! target selectivity (§V-C) — fractions of the vertex count between
//! 0.01 % and 0.2 %. [`QueryGen`] reproduces that: query centres are
//! drawn from the mesh's vertex distribution (so queries hit the mesh,
//! not empty space around a non-convex arbor) and the cube half-extent is
//! calibrated against a spatial histogram to meet the requested
//! selectivity or result count.
//!
//! [`NeuroBenchmark`] encodes the Fig. 5 microbenchmark suite (A–D).

use octopus_geom::rng::SplitMix64;
use octopus_geom::{Aabb, Point3};
use octopus_index::SelectivityHistogram;
use octopus_mesh::Mesh;

/// Histogram resolution for selectivity calibration.
const HIST_RES: usize = 16;

/// Generates monitoring queries over a mesh.
pub struct QueryGen {
    histogram: SelectivityHistogram,
    positions: Vec<Point3>,
    bounds: Aabb,
    /// Minimum half-extent: queries narrower than ~2 local edge lengths
    /// fall outside the validity envelope of the crawl's completeness
    /// argument (§IV-C assumes sub-meshes large enough to expose surface
    /// vertices; the paper's own queries return thousands of results).
    min_half: f32,
    rng: SplitMix64,
}

impl QueryGen {
    /// Builds a generator from the mesh's *current* positions.
    pub fn new(mesh: &Mesh, seed: u64) -> QueryGen {
        let bounds = mesh.bounding_box();
        // Typical edge length ≈ cube root of the bounding volume per
        // vertex (exact for lattice meshes, close enough for any).
        let typical_edge = (bounds.volume() / mesh.num_vertices().max(1) as f64)
            .cbrt()
            .max(f64::MIN_POSITIVE) as f32;
        QueryGen {
            histogram: SelectivityHistogram::build(mesh.positions(), &bounds, HIST_RES),
            positions: mesh.positions().to_vec(),
            bounds,
            min_half: 1.25 * typical_edge,
            rng: SplitMix64::new(seed),
        }
    }

    /// A cube query with (approximately) the given selectivity
    /// (fraction of all vertices, e.g. `0.001` = 0.1 %).
    pub fn query_with_selectivity(&mut self, selectivity: f64) -> Aabb {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        let center = self.random_center();
        let half = self.calibrate_half(center, |hist, q| hist.estimate_selectivity(q), selectivity);
        Aabb::cube(center, half)
    }

    /// A cube query with (approximately) the given result count.
    pub fn query_with_count(&mut self, count: f64) -> Aabb {
        assert!(count > 0.0);
        let center = self.random_center();
        let half = self.calibrate_half(center, |hist, q| hist.estimate_count(q), count);
        Aabb::cube(center, half)
    }

    /// `n` queries at a fixed selectivity.
    pub fn batch_with_selectivity(&mut self, n: usize, selectivity: f64) -> Vec<Aabb> {
        (0..n)
            .map(|_| self.query_with_selectivity(selectivity))
            .collect()
    }

    /// Query centre: a uniformly chosen mesh vertex, slightly jittered so
    /// queries are "uniform randomly in the mesh".
    fn random_center(&mut self) -> Point3 {
        let v = self.positions[self.rng.index(self.positions.len())];
        let jitter = self.bounds.extent().length() * 0.01;
        Point3::new(
            v.x + self.rng.range_f32(-jitter, jitter),
            v.y + self.rng.range_f32(-jitter, jitter),
            v.z + self.rng.range_f32(-jitter, jitter),
        )
    }

    /// Binary-searches the cube half-extent so `metric(cube)` ≈ `target`.
    fn calibrate_half(
        &self,
        center: Point3,
        metric: impl Fn(&SelectivityHistogram, &Aabb) -> f64,
        target: f64,
    ) -> f32 {
        let mut lo = 0.0f32;
        let mut hi = self.bounds.extent().length(); // covers everything
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let value = metric(&self.histogram, &Aabb::cube(center, mid));
            if value < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (0.5 * (lo + hi)).max(self.min_half)
    }

    /// True selectivity of `q` against the generator's position snapshot
    /// (reported in result tables).
    pub fn actual_selectivity(&self, q: &Aabb) -> f64 {
        let hits = self.positions.iter().filter(|p| q.contains(**p)).count();
        hits as f64 / self.positions.len().max(1) as f64
    }
}

/// One of the paper's Fig. 5 neuroscience microbenchmarks.
#[derive(Clone, Copy, Debug)]
pub struct NeuroBenchmark {
    /// Benchmark label (A–D).
    pub name: &'static str,
    /// Use case description from Fig. 5.
    pub use_case: &'static str,
    /// Queries per time step: inclusive range.
    pub queries_per_step: (usize, usize),
    /// Query selectivity: inclusive range (fractions).
    pub selectivity: (f64, f64),
}

impl NeuroBenchmark {
    /// The Fig. 5 suite.
    pub const ALL: [NeuroBenchmark; 4] = [
        NeuroBenchmark {
            name: "A",
            use_case: "Structural Validation",
            queries_per_step: (13, 17),
            selectivity: (0.0011, 0.0016),
        },
        NeuroBenchmark {
            name: "B",
            use_case: "Mesh Quality",
            queries_per_step: (7, 9),
            selectivity: (0.0002, 0.0014),
        },
        NeuroBenchmark {
            name: "C",
            use_case: "Visualization (Low Quality)",
            queries_per_step: (22, 22),
            selectivity: (0.0018, 0.0018),
        },
        NeuroBenchmark {
            name: "D",
            use_case: "Visualization (High Quality)",
            queries_per_step: (22, 22),
            selectivity: (0.0012, 0.0012),
        },
    ];

    /// Draws this benchmark's queries for one time step.
    pub fn step_queries(&self, gen: &mut QueryGen, rng: &mut SplitMix64) -> Vec<Aabb> {
        let (lo, hi) = self.queries_per_step;
        let n = lo + rng.index(hi - lo + 1);
        (0..n)
            .map(|_| {
                let sel = rng.range_f64(self.selectivity.0, self.selectivity.1);
                gen.query_with_selectivity(sel)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_geom::Point3;
    use octopus_meshgen::voxel::VoxelRegion;

    fn box_mesh(n: usize) -> Mesh {
        let bounds = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        octopus_meshgen::tet::tetrahedralize(&VoxelRegion::solid_box(&bounds, n, n, n)).unwrap()
    }

    #[test]
    fn selectivity_calibration_is_close() {
        // Mesh fine enough that the targets stay above the minimum query
        // width (see `min_half`).
        let mesh = box_mesh(20);
        let mut g = QueryGen::new(&mesh, 1);
        for target in [0.005, 0.01, 0.05] {
            let mut total = 0.0;
            let n = 20;
            for _ in 0..n {
                let q = g.query_with_selectivity(target);
                total += g.actual_selectivity(&q);
            }
            let avg = total / f64::from(n);
            assert!(
                (avg - target).abs() < target * 0.8 + 0.002,
                "target {target} vs avg {avg}"
            );
        }
    }

    #[test]
    fn count_calibration_is_close() {
        let mesh = box_mesh(12);
        let mut g = QueryGen::new(&mesh, 2);
        let v = mesh.num_vertices() as f64;
        let mut total = 0.0;
        for _ in 0..20 {
            let q = g.query_with_count(50.0);
            total += g.actual_selectivity(&q) * v;
        }
        let avg = total / 20.0;
        assert!((avg - 50.0).abs() < 45.0, "≈50 results expected, got {avg}");
    }

    #[test]
    fn queries_always_intersect_the_mesh() {
        // Centres are drawn from vertices, so even thin meshes get hit.
        let mesh = octopus_meshgen::neuron(octopus_meshgen::NeuroLevel::L1, 0.4).unwrap();
        let mut g = QueryGen::new(&mesh, 3);
        let mut nonempty = 0;
        for _ in 0..20 {
            let q = g.query_with_selectivity(0.005);
            if g.actual_selectivity(&q) > 0.0 {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 18, "queries must hit the mesh: {nonempty}/20");
    }

    #[test]
    fn benchmark_suite_matches_fig5() {
        assert_eq!(NeuroBenchmark::ALL.len(), 4);
        let a = NeuroBenchmark::ALL[0];
        assert_eq!(a.queries_per_step, (13, 17));
        assert!((a.selectivity.0 - 0.0011).abs() < 1e-9);
        let mut g = QueryGen::new(&box_mesh(6), 4);
        let mut rng = SplitMix64::new(5);
        for b in NeuroBenchmark::ALL {
            let qs = b.step_queries(&mut g, &mut rng);
            assert!(qs.len() >= b.queries_per_step.0 && qs.len() <= b.queries_per_step.1);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mesh = box_mesh(6);
        let q1 = QueryGen::new(&mesh, 9).query_with_selectivity(0.01);
        let q2 = QueryGen::new(&mesh, 9).query_with_selectivity(0.01);
        assert_eq!(q1, q2);
    }
}
